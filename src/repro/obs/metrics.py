"""Per-rank metrics registry: counters, gauges, fixed-bucket histograms.

Each rank's :class:`~repro.simmpi.trace.Trace` owns one
:class:`MetricsRegistry`; instrumented paths observe into it only when the
trace is configured at span level, so the disabled hot path pays a single
attribute check.  Registries are plain-data and picklable, so they ride
the process backend's transported-trace path unchanged.

:func:`aggregate_registries` merges the per-rank registries into the
cluster-wide statistics the paper's figures are built from: counters sum
(with the per-rank min/max/mean spread), gauges report their cross-rank
distribution, and histograms merge bucket-wise with p50/p99 estimated by
linear interpolation inside the winning bucket.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.sketch import DEFAULT_COMPRESSION, QuantileSketch

#: Default byte-size buckets: powers of four from 64 B to 16 MiB.
SIZE_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
)

#: Default latency buckets: decades from 1 µs to 10 s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[float] = None) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact min/max/sum/count.

    ``buckets`` are finite upper bounds in ascending order; an implicit
    +Inf overflow bucket is always present.  All observations are O(log b).
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = SIZE_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value``."""
        if n <= 0:
            return
        # Binary search for the first bound >= value.
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += n
        self.count += n
        self.sum += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Record a batch of observations in one vectorised pass.

        Equivalent to calling :meth:`observe` per value but costs one
        ``searchsorted`` + ``bincount`` instead of a Python loop — the
        instrumented dump feeds per-chunk payload sizes through here.
        """
        import numpy as np

        arr = np.fromiter(values, dtype=np.float64)
        if arr.size == 0:
            return
        slots = np.searchsorted(self.buckets, arr, side="left")
        per_slot = np.bincount(slots, minlength=len(self.counts))
        for i, n in enumerate(per_slot):
            if n:
                self.counts[i] += int(n)
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        low, high = float(arr.min()), float(arr.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]) from the buckets.

        Linear interpolation inside the winning bucket, clamped to the
        exact observed min/max so single-bucket histograms stay honest.
        """
        if not self.count:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = self.count * q / 100.0
        cumulative = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            if cumulative + n >= target:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i] if i < len(self.buckets) else self.max
                lower = max(lower, self.min if self.min != math.inf else lower)
                upper = min(upper, self.max if self.max != -math.inf else upper)
                if upper <= lower:
                    return upper
                frac = (target - cumulative) / n
                return lower + (upper - lower) * min(1.0, max(0.0, frac))
            cumulative += n
        return self.max if self.max != -math.inf else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """One rank's named metrics, created on first use."""

    __slots__ = ("counters", "gauges", "histograms", "sketches")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.sketches: Dict[str, QuantileSketch] = {}

    def __bool__(self) -> bool:
        return bool(
            self.counters or self.gauges or self.histograms or self.sketches
        )

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, buckets: Sequence[float] = SIZE_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(buckets)
        return h

    def sketch(
        self, name: str, compression: int = DEFAULT_COMPRESSION
    ) -> QuantileSketch:
        s = self.sketches.get(name)
        if s is None:
            s = self.sketches[name] = QuantileSketch(compression)
        return s

    def as_dict(self) -> Dict[str, Any]:
        doc = {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(self.histograms.items())
            },
        }
        if self.sketches:
            doc["sketches"] = {
                k: v.as_dict() for k, v in sorted(self.sketches.items())
            }
        return doc


def _spread(values: Sequence[float]) -> Dict[str, float]:
    """min/max/mean/p50/p99 of an exact (small) value list."""
    if not values:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0}
    ordered = sorted(values)

    def pct(q: float) -> float:
        if len(ordered) == 1:
            return ordered[0]
        pos = (len(ordered) - 1) * q / 100.0
        lo = int(pos)
        frac = pos - lo
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac

    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "p50": pct(50),
        "p99": pct(99),
    }


def aggregate_registries(
    registries: Iterable[MetricsRegistry],
) -> Dict[str, Any]:
    """Merge per-rank registries into cluster-wide statistics.

    * counters — total across ranks plus the per-rank spread;
    * gauges — the cross-rank distribution of the per-rank values;
    * histograms — bucket-wise merge with estimated p50/p99;
    * sketches — centroid merge with the online p50/p95/p99/p999.
    """
    regs = [r for r in registries if r is not None]
    counters: Dict[str, List[float]] = {}
    gauges: Dict[str, List[float]] = {}
    merged_hists: Dict[str, Histogram] = {}
    merged_sketches: Dict[str, QuantileSketch] = {}
    for reg in regs:
        for name, c in reg.counters.items():
            counters.setdefault(name, []).append(c.value)
        for name, g in reg.gauges.items():
            if g.value is not None:
                gauges.setdefault(name, []).append(g.value)
        for name, h in reg.histograms.items():
            agg = merged_hists.get(name)
            if agg is None:
                agg = merged_hists[name] = Histogram(h.buckets)
            agg.merge(h)
        for name, s in getattr(reg, "sketches", {}).items():
            agg_s = merged_sketches.get(name)
            if agg_s is None:
                agg_s = merged_sketches[name] = QuantileSketch(s.compression)
            agg_s.merge(s)
    out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, values in sorted(counters.items()):
        out["counters"][name] = {"total": sum(values), **_spread(values)}
    for name, values in sorted(gauges.items()):
        out["gauges"][name] = _spread(values)
    for name, hist in sorted(merged_hists.items()):
        out["histograms"][name] = {
            "count": hist.count,
            "sum": hist.sum,
            "min": hist.min if hist.count else 0.0,
            "max": hist.max if hist.count else 0.0,
            "mean": hist.mean,
            "p50": hist.percentile(50),
            "p99": hist.percentile(99),
            "buckets": [
                [bound, n] for bound, n in zip(hist.buckets, hist.counts)
            ] + [["+Inf", hist.counts[-1]]],
        }
    if merged_sketches:
        out["sketches"] = {
            name: sk.summary()
            for name, sk in sorted(merged_sketches.items())
        }
    return out
