"""Continuous telemetry timeline: a bounded ring buffer of operation samples.

Where :func:`~repro.obs.export.capture_run` freezes one run's counters at a
single instant, the :class:`TimelineStore` gives ``repro.obs`` a *time
dimension*: every dump/restore/repair/GC lands one :class:`TimelineSample`
tagged with its logical tick, tenant, strategy, backend and epoch, plus a
free-form numeric payload (latency, queue wait, dedup ratio, load skew,
restore locality, bytes moved, …).  The ring is bounded (old samples fall
off; ``dropped`` counts them) while per-``(op, field)``
:class:`~repro.obs.sketch.QuantileSketch` rollups keep whole-run
percentiles online regardless of eviction.

Two clocks, deliberately separated:

* the **tick** axis is logical time (the service's drain counter, the dst
  executor's step index) — everything the SLO engine and the dst verdict
  read is derived from ticks and sample *values* that are themselves
  deterministic;
* **wall-clock** latencies ride along as ordinary sample fields for the
  dashboards and sketches, but never enter a verdict digest (the same
  contract ``CheckpointService`` already documents for its histograms).

Serialized timelines carry the ``repro.obs/timeline/v1`` schema (see
:func:`repro.obs.schema.validate_timeline`) and are what the CI
``slo-smoke`` job uploads as its artifact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.obs.sketch import DEFAULT_COMPRESSION, QuantileSketch

TIMELINE_SCHEMA_ID = "repro.obs/timeline/v1"

#: operation kinds a timeline records; free-form strings are allowed but
#: these are the ones the built-in instrumentation emits
TIMELINE_OPS = ("dump", "restore", "repair", "gc")

#: default ring capacity — generous for every in-repo driver (a fuzz
#: scenario records tens of samples, a serve run thousands)
DEFAULT_CAPACITY = 4096


@dataclass
class TimelineSample:
    """One operation's telemetry record on the timeline."""

    tick: int
    op: str
    tenant: str = ""
    strategy: str = ""
    backend: str = ""
    epoch: int = -1
    values: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "op": self.op,
            "tenant": self.tenant,
            "strategy": self.strategy,
            "backend": self.backend,
            "epoch": self.epoch,
            "values": dict(sorted(self.values.items())),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TimelineSample":
        return cls(
            tick=int(doc["tick"]),
            op=str(doc["op"]),
            tenant=str(doc.get("tenant", "")),
            strategy=str(doc.get("strategy", "")),
            backend=str(doc.get("backend", "")),
            epoch=int(doc.get("epoch", -1)),
            values={k: float(v) for k, v in doc.get("values", {}).items()},
        )


class TimelineStore:
    """Bounded ring buffer of :class:`TimelineSample` plus online sketches.

    ``capacity=0`` disables recording entirely (every :meth:`record` is a
    no-op) — the knob the obs-overhead benchmark flips to price the
    instrumentation.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sketch_compression: int = DEFAULT_COMPRESSION,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.sketch_compression = int(sketch_compression)
        self._ring: Deque[TimelineSample] = deque(
            maxlen=self.capacity if self.capacity else 1
        )
        self.recorded = 0  # total samples ever recorded
        self.dropped = 0   # samples evicted off the ring
        #: online per-``(op, field)`` percentile rollups, never evicted
        self.sketches: Dict[str, QuantileSketch] = {}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._ring) if self.enabled else 0

    def record(
        self,
        op: str,
        tick: int,
        tenant: str = "",
        strategy: str = "",
        backend: str = "",
        epoch: int = -1,
        **values: float,
    ) -> Optional[TimelineSample]:
        """Append one sample; returns it (or None when disabled)."""
        if not self.enabled:
            return None
        sample = TimelineSample(
            tick=int(tick), op=op, tenant=tenant, strategy=strategy,
            backend=backend, epoch=int(epoch),
            values={k: float(v) for k, v in values.items()},
        )
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(sample)
        self.recorded += 1
        for name, value in sample.values.items():
            key = f"{op}.{name}"
            sk = self.sketches.get(key)
            if sk is None:
                sk = self.sketches[key] = QuantileSketch(
                    self.sketch_compression
                )
            sk.observe(value)
        return sample

    # -- queries ---------------------------------------------------------------
    def samples(
        self,
        op: Optional[str] = None,
        tenant: Optional[str] = None,
        since_tick: Optional[int] = None,
    ) -> List[TimelineSample]:
        """Samples still on the ring, oldest first, optionally filtered."""
        out = []
        for s in self._ring:
            if op is not None and s.op != op:
                continue
            if tenant is not None and s.tenant != tenant:
                continue
            if since_tick is not None and s.tick < since_tick:
                continue
            out.append(s)
        return out

    def window(
        self, op: str, name: str, start_tick: int, end_tick: int
    ) -> List[float]:
        """Values of ``name`` for ``op`` samples with
        ``start_tick < tick <= end_tick`` (the SLO engine's window shape)."""
        return [
            s.values[name]
            for s in self._ring
            if s.op == op and start_tick < s.tick <= end_tick
            and name in s.values
        ]

    def sketch(self, op: str, name: str) -> Optional[QuantileSketch]:
        """The whole-run percentile sketch of ``op``'s ``name`` field."""
        return self.sketches.get(f"{op}.{name}")

    def op_counts(self) -> Dict[str, int]:
        """Samples per op still on the ring (deterministic ordering)."""
        counts: Dict[str, int] = {}
        for s in self._ring:
            counts[s.op] = counts.get(s.op, 0) + 1
        return dict(sorted(counts.items()))

    def latest_tick(self) -> int:
        return self._ring[-1].tick if self._ring and self.enabled else 0

    def merge(self, other: "TimelineStore") -> None:
        """Fold another store in (cross-rank / cross-service aggregation):
        samples interleave by tick (stable on ties), sketches merge."""
        if not self.enabled:
            return
        merged = sorted(
            list(self._ring) + (other.samples() if other.enabled else []),
            key=lambda s: s.tick,
        )
        overflow = max(0, len(merged) - (self._ring.maxlen or 0))
        self._ring.clear()
        self._ring.extend(merged[overflow:])
        self.recorded += other.recorded
        self.dropped += other.dropped + overflow
        for key, sk in other.sketches.items():
            mine = self.sketches.get(key)
            if mine is None:
                mine = self.sketches[key] = QuantileSketch(sk.compression)
            mine.merge(sk)

    # -- serialization ---------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": TIMELINE_SCHEMA_ID,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "samples": [s.as_dict() for s in self._ring],
            "sketches": {
                k: v.as_dict() for k, v in sorted(self.sketches.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TimelineStore":
        from repro.obs.schema import validate_timeline

        validate_timeline(doc)
        store = cls(capacity=int(doc.get("capacity", DEFAULT_CAPACITY)))
        for sample_doc in doc.get("samples", []):
            sample = TimelineSample.from_dict(sample_doc)
            store._ring.append(sample)
        store.recorded = int(doc.get("recorded", len(store._ring)))
        store.dropped = int(doc.get("dropped", 0))
        store.sketches = {
            k: QuantileSketch.from_dict(v)
            for k, v in doc.get("sketches", {}).items()
        }
        return store
