"""Bench regression gating: compare fresh bench documents against baselines.

``repro-eval bench-diff`` loads a freshly produced ``repro.obs/bench/v1``
document and the committed ``BENCH_*.json`` baseline, compares every
timing label the two share, and flags a **regression** when the fresh
timing exceeds the baseline by more than a noise tolerance (default 25 %),
or a recorded ``speedup`` collapses below the baseline's by the same
margin.  Sub-millisecond timings are skipped by default — they are noise
on shared CI runners — and entries present on only one side are reported
but never fatal (new benchmarks must not fail the gate that predates
them).

The comparison is machine-honest: when the two documents disagree on
``host``/``cores``/``smoke`` the diff says so in its notes, because a
30 % "regression" between different machines is not a finding.  The CLI
exits 2 on any regression, which is what lets CI gate perf PRs on the
checked-in baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping

from repro.obs.schema import validate_bench

#: default fractional slowdown tolerated before a timing counts as a
#: regression (CI runners are noisy; 25 % is well past jitter on the
#: best-of-N timings the benchmarks record)
DEFAULT_TOLERANCE = 0.25

#: timings below this many seconds are never compared (noise-dominated)
DEFAULT_MIN_SECONDS = 1e-3


@dataclass
class BenchDelta:
    """One compared quantity: a timing label or a speedup."""

    benchmark: str
    label: str
    kind: str  # "timing" | "speedup"
    baseline: float
    fresh: float
    ratio: float  # fresh/baseline for timings, baseline/fresh for speedups
    regression: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "label": self.label,
            "kind": self.kind,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "ratio": self.ratio,
            "regression": self.regression,
        }


@dataclass
class BenchDiff:
    """Outcome of one baseline comparison."""

    rows: List[BenchDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def regressions(self) -> List[BenchDelta]:
        return [r for r in self.rows if r.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "rows": [r.as_dict() for r in self.rows],
            "regressions": [r.as_dict() for r in self.regressions],
            "notes": list(self.notes),
        }


def diff_bench(
    fresh: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchDiff:
    """Compare a fresh bench document against a baseline document."""
    validate_bench(fresh)
    validate_bench(baseline)
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    out = BenchDiff(tolerance=tolerance)
    for key in ("host", "cores", "smoke"):
        if fresh.get(key) != baseline.get(key):
            out.notes.append(
                f"{key} differs: baseline={baseline.get(key)!r} "
                f"fresh={fresh.get(key)!r} — thresholds may not transfer"
            )
    fresh_benches = fresh["benchmarks"]
    base_benches = baseline["benchmarks"]
    for name in sorted(set(base_benches) - set(fresh_benches)):
        out.notes.append(f"benchmark {name!r} missing from fresh document")
    for name in sorted(set(fresh_benches) - set(base_benches)):
        out.notes.append(f"benchmark {name!r} has no baseline (new)")
    for name in sorted(set(fresh_benches) & set(base_benches)):
        f_entry, b_entry = fresh_benches[name], base_benches[name]
        f_timings = f_entry.get("timings", {})
        b_timings = b_entry.get("timings", {})
        for label in sorted(set(f_timings) & set(b_timings)):
            base_s = float(b_timings[label])
            fresh_s = float(f_timings[label])
            if base_s < min_seconds or fresh_s < min_seconds:
                out.notes.append(
                    f"{name}.{label}: below {min_seconds:g}s floor, skipped"
                )
                continue
            ratio = fresh_s / base_s
            out.rows.append(BenchDelta(
                benchmark=name, label=label, kind="timing",
                baseline=base_s, fresh=fresh_s, ratio=ratio,
                regression=ratio > 1.0 + tolerance,
            ))
        f_speed = f_entry.get("speedup")
        b_speed = b_entry.get("speedup")
        if f_speed is not None and b_speed is not None and b_speed > 0:
            # A collapsing speedup is a regression even when absolute
            # timings moved together (e.g. the fast path lost its edge).
            ratio = b_speed / f_speed if f_speed > 0 else float("inf")
            out.rows.append(BenchDelta(
                benchmark=name, label="speedup", kind="speedup",
                baseline=float(b_speed), fresh=float(f_speed), ratio=ratio,
                regression=ratio > 1.0 + tolerance,
            ))
    return out


def load_bench(path) -> Dict[str, Any]:
    """Read and validate one bench document."""
    doc = json.loads(Path(path).read_text())
    validate_bench(doc)
    return doc


def format_bench_diff(diff: BenchDiff) -> str:
    """Human-readable diff table, regressions flagged."""
    lines = [
        f"bench-diff · {len(diff.rows)} comparison(s) · "
        f"{len(diff.regressions)} regression(s) · "
        f"tolerance {diff.tolerance:.0%}"
    ]
    for row in diff.rows:
        if row.kind == "timing":
            moved = (
                f"{row.baseline * 1e3:9.2f} ms -> {row.fresh * 1e3:9.2f} ms"
            )
        else:
            moved = f"{row.baseline:8.2f} x -> {row.fresh:8.2f} x"
        flag = "  REGRESSION" if row.regression else ""
        lines.append(
            f"  {row.benchmark + '.' + row.label:<36s} {moved} "
            f"(x{row.ratio:.3f}){flag}"
        )
    for note in diff.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
