"""Stable JSON schemas for observability exports and benchmark results.

Four document families share this module:

* **run snapshots** (``repro.obs/run/v1``) — the machine-readable export of
  one traced collective run: per-rank phase counters, spans and metrics
  plus the cross-rank aggregation.  Written by
  :func:`repro.obs.export.write_run`, consumed by
  :mod:`repro.obs.analyzer` and the ``repro-eval trace`` subcommand.
* **benchmark results** (``repro.obs/bench/v1``) — the unified shape of
  the ``BENCH_*.json`` files at the repo root.  Every benchmark entry
  carries the shared keys ``timings`` (label → seconds) and ``speedup``;
  the document carries ``host``/``cores``/``smoke`` so trajectories from
  different machines stay comparable, and ``repro-eval bench-diff``
  compares fresh documents against the committed baselines.
* **telemetry timelines** (``repro.obs/timeline/v1``) — serialized
  :class:`~repro.obs.timeline.TimelineStore` ring buffers: tick-tagged
  operation samples plus the online quantile sketches.
* **SLO verdicts** (``repro.obs/slo/v1``) — the deterministic output of
  the :class:`~repro.obs.slo.SLOEngine`: objectives, windows and the
  fire/resolve alert timeline.

Validation is structural (no external jsonschema dependency): required
keys, types and value ranges.  Failures raise :class:`SchemaError` naming
the offending path, so a benchmark writing a malformed document fails its
own run instead of poisoning the trajectory.
"""

from __future__ import annotations

import json
import numbers
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

RUN_SCHEMA_ID = "repro.obs/run/v1"
BENCH_SCHEMA_ID = "repro.obs/bench/v1"
TIMELINE_SCHEMA_ID = "repro.obs/timeline/v1"
SLO_SCHEMA_ID = "repro.obs/slo/v1"


class SchemaError(ValueError):
    """A document does not conform to its declared schema."""


def _fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def _require(doc: Mapping, key: str, kind, path: str):
    if key not in doc:
        _fail(f"{path}.{key}", "missing required key")
    value = doc[key]
    if kind is float:
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            _fail(f"{path}.{key}", f"expected a number, got {type(value).__name__}")
    elif kind is int:
        if not isinstance(value, int) or isinstance(value, bool):
            _fail(f"{path}.{key}", f"expected an int, got {type(value).__name__}")
    elif not isinstance(value, kind):
        _fail(
            f"{path}.{key}",
            f"expected {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}",
        )
    return value


def _is_number(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


# -- run snapshots ------------------------------------------------------------
def validate_run(doc: Mapping[str, Any]) -> Mapping[str, Any]:
    """Validate a run snapshot; returns it unchanged on success."""
    if not isinstance(doc, Mapping):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _require(doc, "schema", str, "$")
    if schema != RUN_SCHEMA_ID:
        _fail("$.schema", f"expected {RUN_SCHEMA_ID!r}, got {schema!r}")
    _require(doc, "host", str, "$")
    cores = _require(doc, "cores", int, "$")
    if cores < 1:
        _fail("$.cores", f"must be >= 1, got {cores}")
    _require(doc, "meta", Mapping, "$")
    ranks = _require(doc, "ranks", list, "$")
    if not ranks:
        _fail("$.ranks", "must contain at least one rank")
    seen = set()
    for i, entry in enumerate(ranks):
        path = f"$.ranks[{i}]"
        if not isinstance(entry, Mapping):
            _fail(path, "expected an object")
        rank = _require(entry, "rank", int, path)
        if rank in seen:
            _fail(f"{path}.rank", f"duplicate rank {rank}")
        seen.add(rank)
        phases = _require(entry, "phases", Mapping, path)
        for name, counters in phases.items():
            if not isinstance(counters, Mapping):
                _fail(f"{path}.phases[{name!r}]", "expected an object")
            for key, value in counters.items():
                if not _is_number(value):
                    _fail(
                        f"{path}.phases[{name!r}].{key}",
                        f"expected a number, got {type(value).__name__}",
                    )
        spans = _require(entry, "spans", list, path)
        for j, span in enumerate(spans):
            spath = f"{path}.spans[{j}]"
            if not isinstance(span, Mapping):
                _fail(spath, "expected an object")
            _require(span, "name", str, spath)
            start = _require(span, "start", float, spath)
            end = _require(span, "end", float, spath)
            if end < start:
                _fail(spath, f"end {end} before start {start}")
            parent = _require(span, "parent", int, spath)
            if parent >= j:
                _fail(
                    f"{spath}.parent",
                    f"must reference an earlier span, got {parent}",
                )
            _require(span, "attrs", Mapping, spath)
        _require(entry, "metrics", Mapping, path)
    _require(doc, "metrics", Mapping, "$")
    return doc


# -- benchmark results ---------------------------------------------------------
def validate_bench(doc: Mapping[str, Any]) -> Mapping[str, Any]:
    """Validate a unified benchmark document; returns it on success."""
    if not isinstance(doc, Mapping):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _require(doc, "schema", str, "$")
    if schema != BENCH_SCHEMA_ID:
        _fail("$.schema", f"expected {BENCH_SCHEMA_ID!r}, got {schema!r}")
    _require(doc, "host", str, "$")
    cores = _require(doc, "cores", int, "$")
    if cores < 1:
        _fail("$.cores", f"must be >= 1, got {cores}")
    _require(doc, "smoke", bool, "$")
    benchmarks = _require(doc, "benchmarks", Mapping, "$")
    if not benchmarks:
        _fail("$.benchmarks", "must contain at least one benchmark")
    for name, entry in benchmarks.items():
        path = f"$.benchmarks[{name!r}]"
        if not isinstance(entry, Mapping):
            _fail(path, "expected an object")
        timings = _require(entry, "timings", Mapping, path)
        if not timings:
            _fail(f"{path}.timings", "must contain at least one timing")
        for label, seconds in timings.items():
            if not _is_number(seconds) or seconds < 0:
                _fail(
                    f"{path}.timings[{label!r}]",
                    f"expected seconds >= 0, got {seconds!r}",
                )
        if "speedup" not in entry:
            _fail(f"{path}.speedup", "missing required key")
        speedup = entry["speedup"]
        if speedup is not None and (not _is_number(speedup) or speedup < 0):
            _fail(f"{path}.speedup", f"expected a number >= 0 or null, got {speedup!r}")
    return doc


# -- telemetry timelines -------------------------------------------------------
def validate_timeline(doc: Mapping[str, Any]) -> Mapping[str, Any]:
    """Validate a serialized timeline; returns it unchanged on success."""
    if not isinstance(doc, Mapping):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _require(doc, "schema", str, "$")
    if schema != TIMELINE_SCHEMA_ID:
        _fail("$.schema", f"expected {TIMELINE_SCHEMA_ID!r}, got {schema!r}")
    capacity = _require(doc, "capacity", int, "$")
    if capacity < 0:
        _fail("$.capacity", f"must be >= 0, got {capacity}")
    recorded = _require(doc, "recorded", int, "$")
    dropped = _require(doc, "dropped", int, "$")
    if recorded < 0 or dropped < 0 or dropped > recorded:
        _fail("$", f"inconsistent counts: recorded={recorded} dropped={dropped}")
    samples = _require(doc, "samples", list, "$")
    last_tick = None
    for i, sample in enumerate(samples):
        path = f"$.samples[{i}]"
        if not isinstance(sample, Mapping):
            _fail(path, "expected an object")
        tick = _require(sample, "tick", int, path)
        if last_tick is not None and tick < last_tick:
            _fail(f"{path}.tick", f"ticks must be non-decreasing, "
                                  f"got {tick} after {last_tick}")
        last_tick = tick
        op = _require(sample, "op", str, path)
        if not op:
            _fail(f"{path}.op", "must be non-empty")
        values = _require(sample, "values", Mapping, path)
        for key, value in values.items():
            if not _is_number(value):
                _fail(
                    f"{path}.values[{key!r}]",
                    f"expected a number, got {type(value).__name__}",
                )
    sketches = _require(doc, "sketches", Mapping, "$")
    for name, sk in sketches.items():
        path = f"$.sketches[{name!r}]"
        if not isinstance(sk, Mapping):
            _fail(path, "expected an object")
        count = _require(sk, "count", int, path)
        if count < 0:
            _fail(f"{path}.count", f"must be >= 0, got {count}")
        means = _require(sk, "means", list, path)
        weights = _require(sk, "weights", list, path)
        if len(means) != len(weights):
            _fail(path, f"means/weights length mismatch: "
                        f"{len(means)} vs {len(weights)}")
    return doc


# -- SLO verdicts --------------------------------------------------------------
def validate_slo(doc: Mapping[str, Any]) -> Mapping[str, Any]:
    """Validate an SLO verdict document; returns it unchanged on success."""
    if not isinstance(doc, Mapping):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _require(doc, "schema", str, "$")
    if schema != SLO_SCHEMA_ID:
        _fail("$.schema", f"expected {SLO_SCHEMA_ID!r}, got {schema!r}")
    objectives = _require(doc, "objectives", list, "$")
    if not objectives:
        _fail("$.objectives", "must contain at least one objective")
    for i, obj in enumerate(objectives):
        path = f"$.objectives[{i}]"
        if not isinstance(obj, Mapping):
            _fail(path, "expected an object")
        for key in ("op", "field", "stat", "cmp"):
            _require(obj, key, str, path)
        _require(obj, "threshold", float, path)
    windows = _require(doc, "windows", list, "$")
    if not windows:
        _fail("$.windows", "must contain at least one window")
    _require(doc, "ticks", int, "$")
    alerts = _require(doc, "alerts", list, "$")
    for i, alert in enumerate(alerts):
        path = f"$.alerts[{i}]"
        if not isinstance(alert, Mapping):
            _fail(path, "expected an object")
        _require(alert, "tick", int, path)
        _require(alert, "objective", str, path)
        event = _require(alert, "event", str, path)
        if event not in ("fire", "resolve"):
            _fail(f"{path}.event",
                  f"expected 'fire' or 'resolve', got {event!r}")
    _require(doc, "ok", bool, "$")
    return doc


def bench_document(
    host: str, cores: int, smoke: bool, benchmarks: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """An empty unified benchmark document."""
    return {
        "schema": BENCH_SCHEMA_ID,
        "host": host,
        "cores": int(cores),
        "smoke": bool(smoke),
        "benchmarks": dict(benchmarks or {}),
    }


def write_bench_entry(
    path, name: str, payload: Mapping[str, Any], smoke: bool = False
) -> Dict[str, Any]:
    """Merge one benchmark entry into the unified document at ``path``.

    Existing conforming documents keep their other entries; legacy flat
    documents (pre-schema) are migrated by starting fresh.  The merged
    document is validated *before* writing, so a malformed payload fails
    the calling benchmark without touching the file.
    """
    import os
    import platform

    path = Path(path)
    doc = None
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("schema") == BENCH_SCHEMA_ID:
                doc = existing
        except (OSError, json.JSONDecodeError):
            doc = None
    if doc is None:
        doc = bench_document(platform.node() or "unknown", os.cpu_count() or 1, smoke)
    doc["smoke"] = bool(smoke)
    doc["host"] = platform.node() or "unknown"
    doc["cores"] = os.cpu_count() or 1
    doc["benchmarks"][name] = dict(payload)
    validate_bench(doc)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
