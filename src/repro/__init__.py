"""repro: dedup-aware partner replication for collective I/O dumps.

A complete reproduction of Bogdan Nicolae, *"Leveraging naturally
distributed data redundancy to reduce collective I/O replication
overhead"*, IPDPS 2015 — the ``DUMP_OUTPUT`` collective that co-optimizes
inter-process deduplication with partner replication, plus every substrate
it runs on: an MPI-like SPMD layer, node-local content-addressed storage,
the HPCCG/CM1 workloads, a checkpoint-restart runtime and the performance
model that regenerates the paper's evaluation.

Quickstart::

    from repro import Dataset, DumpConfig, dump_output, restore_dataset
    from repro.simmpi import World
    from repro.storage import Cluster

    cluster = Cluster(n_ranks=8)
    config = DumpConfig(replication_factor=3)

    def program(comm):
        data = Dataset.from_buffer(my_bytes_for(comm.rank))
        return dump_output(comm, data, config, cluster)

    reports = World(8).run(program)
    dataset, _ = restore_dataset(cluster, rank=0)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from repro.core import (
    Dataset,
    DumpConfig,
    DumpReport,
    Fingerprinter,
    GlobalView,
    MergeTable,
    Strategy,
    dump_output,
    hmerge,
    rank_shuffle,
    restore_dataset,
)
from repro.storage import Cluster
from repro.simmpi import World, run_spmd

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Dataset",
    "DumpConfig",
    "DumpReport",
    "Fingerprinter",
    "GlobalView",
    "MergeTable",
    "Strategy",
    "World",
    "__version__",
    "dump_output",
    "hmerge",
    "rank_shuffle",
    "restore_dataset",
    "run_spmd",
]
