"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel``; on offline
machines without the wheel package, ``python setup.py develop`` (which this
file enables) installs the same editable egg-link.
"""

from setuptools import setup

setup()
