"""DumpMetrics: the paper's plotted quantities, checked exactly on
synthetic workloads with known redundancy structure."""

import pytest

from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.sim import compute_metrics, simulate_dump

CS = 256


def metrics_for(workload, n, strategy, k=3, shuffle=True, rank_to_node=None):
    indices = workload.build_indices(n, chunk_size=CS)
    cfg = DumpConfig(
        replication_factor=k, chunk_size=CS, strategy=strategy,
        f_threshold=100_000, shuffle=shuffle,
    )
    result = simulate_dump(indices, cfg)
    return compute_metrics(indices, result, rank_to_node=rank_to_node), result


class TestUniqueContent:
    """Figure 3(a) semantics, validated against analytic expectations."""

    def make(self):
        return SyntheticWorkload(
            chunks_per_rank=40,
            chunk_size=CS,
            frac_global=0.25,
            frac_zero=0.1,
            frac_local_dup=0.2,
            local_dup_degree=4,
        )

    def test_no_dedup_counts_everything(self):
        w = self.make()
        m, _ = metrics_for(w, 6, Strategy.NO_DEDUP)
        assert m.unique_content_bytes == 6 * 40 * CS
        assert m.unique_fraction == 1.0

    def test_local_dedup_counts_per_rank_unique(self):
        w = self.make()
        m, _ = metrics_for(w, 6, Strategy.LOCAL_DEDUP)
        assert m.unique_content_bytes == 6 * w.expected_local_unique_chunks() * CS

    def test_coll_dedup_counts_global_distinct(self):
        w = self.make()
        n = 6
        m, _ = metrics_for(w, n, Strategy.COLL_DEDUP)
        assert m.unique_content_bytes == w.expected_global_distinct_chunks(n) * CS

    def test_strategy_ordering(self):
        w = self.make()
        vals = {
            s: metrics_for(w, 8, s)[0].unique_content_bytes for s in Strategy
        }
        assert vals[Strategy.COLL_DEDUP] < vals[Strategy.LOCAL_DEDUP]
        assert vals[Strategy.LOCAL_DEDUP] < vals[Strategy.NO_DEDUP]


class TestTrafficStats:
    def test_send_stats_consistent(self):
        w = SyntheticWorkload(chunks_per_rank=30, chunk_size=CS, frac_global=0.5)
        m, result = metrics_for(w, 7, Strategy.COLL_DEDUP)
        assert m.sent_total_bytes == sum(m.per_rank_sent)
        assert m.sent_max == max(m.per_rank_sent)
        assert m.sent_avg == pytest.approx(m.sent_total_bytes / 7)
        assert m.recv_avg == pytest.approx(sum(m.per_rank_recv) / 7)

    def test_send_equals_recv_in_aggregate(self):
        w = SyntheticWorkload(chunks_per_rank=30, chunk_size=CS)
        for strategy in Strategy:
            m, _ = metrics_for(w, 6, strategy)
            assert sum(m.per_rank_sent) == sum(m.per_rank_recv)


class TestEffectiveReplication:
    def test_full_replication_reaches_k(self):
        w = SyntheticWorkload(chunks_per_rank=10, chunk_size=CS, frac_global=0.0)
        m, _ = metrics_for(w, 6, Strategy.NO_DEDUP, k=3)
        assert m.effective_replication_min == 3

    def test_coll_dedup_caps_overreplication(self):
        """A chunk on all 8 ranks must end up on exactly K nodes."""
        w = SyntheticWorkload(
            chunks_per_rank=10, chunk_size=CS, frac_global=1.0, frac_zero=0.0,
            frac_local_dup=0.0,
        )
        m, result = metrics_for(w, 8, Strategy.COLL_DEDUP, k=3)
        counts = {len(h) for h in result.placements.values()}
        assert counts == {3}

    def test_node_replication_with_shared_nodes(self):
        """With 2 ranks per node, rank-level replicas can share a node; the
        node-distinct metric must be <= the rank-level one."""
        w = SyntheticWorkload(chunks_per_rank=12, chunk_size=CS, frac_global=0.5)
        rank_to_node = [r // 2 for r in range(8)]
        m, _ = metrics_for(
            w, 8, Strategy.COLL_DEDUP, k=3, rank_to_node=rank_to_node
        )
        assert m.node_replication_min <= m.effective_replication_min


class TestShuffleEffect:
    def test_shuffle_never_worse_on_skewed_load(self):
        """Heavily skewed unique content: shuffling must not increase the
        max receive size."""
        class Skewed(SyntheticWorkload):
            def rank_segments(self, rank, n_ranks):
                segs = super().rank_segments(rank, n_ranks)
                if rank < 2:  # two heavy ranks with extra unique data
                    import numpy as np

                    extra = np.random.RandomState(rank).bytes(CS * 60)
                    segs.append((("heavy", rank), extra))
                return segs

        w = Skewed(chunks_per_rank=10, chunk_size=CS, frac_global=0.8,
                   frac_zero=0.0, frac_local_dup=0.0)
        m_on, _ = metrics_for(w, 8, Strategy.COLL_DEDUP, k=3, shuffle=True)
        w2 = Skewed(chunks_per_rank=10, chunk_size=CS, frac_global=0.8,
                    frac_zero=0.0, frac_local_dup=0.0)
        m_off, _ = metrics_for(w2, 8, Strategy.COLL_DEDUP, k=3, shuffle=False)
        assert m_on.recv_max <= m_off.recv_max
        assert m_on.sent_total_bytes == m_off.sent_total_bytes  # volume unchanged
