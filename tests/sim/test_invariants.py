"""Pipeline-wide property tests: the paper's guarantees under random
workloads.

Hypothesis generates arbitrary per-rank fingerprint multisets; for every
strategy/K/shuffle combination the simulated dump must satisfy the
invariants the paper's correctness rests on:

* conservation — chunks sent == chunks received, globally and per edge;
* safety — a rank discards a chunk only if K other ranks store it;
* coverage — every fingerprint ends up on >= min(K, world) ranks when
  every holder participates in replication (baselines), and >= K for
  coll-dedup via designated stores + top-ups (rank-level, allowing for
  partner/designee collisions, which the metric reports);
* exactness — window layouts tile exactly; loads match plans.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DumpConfig, Strategy
from repro.core.local_dedup import index_from_fingerprints
from repro.sim import compute_metrics, simulate_dump


def fp(i: int) -> bytes:
    return i.to_bytes(2, "little") * 10


workload_st = st.lists(  # per rank: a list of chunk ids (duplicates allowed)
    st.lists(st.integers(0, 40), min_size=0, max_size=30),
    min_size=1,
    max_size=10,
)


def make_indices(per_rank_ids):
    return [
        index_from_fingerprints([fp(i) for i in ids], chunk_size=64)
        for ids in per_rank_ids
    ]


@given(workload_st, st.integers(1, 5), st.sampled_from(list(Strategy)),
       st.booleans())
@settings(max_examples=60)
def test_conservation_and_layout(per_rank_ids, k, strategy, shuffle):
    indices = make_indices(per_rank_ids)
    cfg = DumpConfig(replication_factor=k, chunk_size=64, strategy=strategy,
                     f_threshold=4096, shuffle=shuffle)
    result = simulate_dump(indices, cfg)

    sent = sum(r.sent_chunks for r in result.reports)
    recv = sum(r.received_chunks for r in result.reports)
    assert sent == recv
    assert sum(r.sent_bytes for r in result.reports) == sum(
        r.received_bytes for r in result.reports
    )
    result.layout.check_invariants()
    # Window sizes equal the planned send loads.
    for rank, plan in enumerate(result.plans):
        assert plan.load == result.reports[rank].load


@given(workload_st, st.integers(2, 4))
@settings(max_examples=60)
def test_discard_safety(per_rank_ids, k):
    """A discarded chunk must be stored by >= min(k, holders) other ranks."""
    indices = make_indices(per_rank_ids)
    cfg = DumpConfig(replication_factor=k, chunk_size=64,
                     strategy=Strategy.COLL_DEDUP, f_threshold=4096)
    result = simulate_dump(indices, cfg)
    world = len(indices)
    k_eff = min(k, world)
    for rank, plan in enumerate(result.plans):
        for discarded in plan.discarded_fps:
            holders = result.placements.get(discarded, set())
            assert rank not in holders or discarded in plan.store_fps
            assert len(holders) >= k_eff


@given(workload_st, st.integers(1, 4))
@settings(max_examples=60)
def test_every_chunk_placed(per_rank_ids, k):
    """No fingerprint may vanish: every chunk of every rank has a holder,
    and coll-dedup reaches the rank-level replication target up to partner
    collisions (which only ever reduce distinct holders, never below 1)."""
    indices = make_indices(per_rank_ids)
    cfg = DumpConfig(replication_factor=k, chunk_size=64,
                     strategy=Strategy.COLL_DEDUP, f_threshold=4096)
    result = simulate_dump(indices, cfg)
    world = len(indices)
    k_eff = min(k, world)
    for idx in indices:
        for f_ in idx.counts:
            holders = result.placements.get(f_, set())
            assert holders, "chunk lost"
    metrics = compute_metrics(indices, result)
    if result.placements:
        assert metrics.effective_replication_min >= 1
        # With designated stores + per-designee distinct partners, the only
        # shortfall source is a top-up landing on another designated rank.
        assert metrics.effective_replication_avg >= min(2, k_eff) * 0.75


@given(workload_st, st.integers(2, 4))
@settings(max_examples=40)
def test_baselines_hit_exact_replication(per_rank_ids, k):
    """no-dedup/local-dedup replicate to k-1 *distinct* successive ranks:
    every chunk is on exactly min(k, world) distinct ranks at least."""
    indices = make_indices(per_rank_ids)
    world = len(indices)
    k_eff = min(k, world)
    for strategy in (Strategy.NO_DEDUP, Strategy.LOCAL_DEDUP):
        cfg = DumpConfig(replication_factor=k, chunk_size=64, strategy=strategy,
                         f_threshold=4096)
        result = simulate_dump(indices, cfg)
        for f_, holders in result.placements.items():
            assert len(holders) >= k_eff


@given(workload_st)
@settings(max_examples=40)
def test_coll_never_sends_more_than_local(per_rank_ids):
    """The headline guarantee: collective dedup can only remove work."""
    indices = make_indices(per_rank_ids)
    totals = {}
    for strategy in (Strategy.LOCAL_DEDUP, Strategy.COLL_DEDUP):
        cfg = DumpConfig(replication_factor=3, chunk_size=64, strategy=strategy,
                         f_threshold=4096)
        result = simulate_dump(indices, cfg)
        totals[strategy] = sum(r.sent_chunks for r in result.reports)
    assert totals[Strategy.COLL_DEDUP] <= totals[Strategy.LOCAL_DEDUP]
