"""The load-bearing test: threaded SPMD dump == deterministic simulator.

Every figure is regenerated with the simulator, so its fidelity to the
real (threaded, byte-moving) implementation is what makes the benchmark
results meaningful.
"""

import pytest

from repro.core import DumpConfig, Strategy, dump_output
from repro.core.fingerprint import Fingerprinter
from repro.core.local_dedup import local_dedup
from repro.sim import simulate_dump
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64

COMPARED_FIELDS = [
    "n_chunks",
    "dataset_bytes",
    "local_unique_chunks",
    "local_unique_bytes",
    "view_entries",
    "view_bytes",
    "discarded_chunks",
    "stored_chunks",
    "stored_bytes",
    "received_chunks",
    "received_bytes",
    "sent_chunks",
    "sent_bytes",
    "sent_per_partner",
    "load",
    "shuffle_position",
    "partners",
]


def run_both(n, strategy, k, shuffle, dataset_factory=make_rank_dataset, f=4096):
    cfg = DumpConfig(
        replication_factor=k,
        chunk_size=CS,
        strategy=strategy,
        f_threshold=f,
        shuffle=shuffle,
    )
    cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
    threaded = World(n).run(
        lambda comm: dump_output(comm, dataset_factory(comm.rank), cfg, cluster)
    )
    fpr = Fingerprinter(cfg.hash_name)
    indices = [local_dedup(dataset_factory(r), fpr, CS) for r in range(n)]
    simulated = simulate_dump(indices, cfg)
    return threaded, simulated, cluster


@pytest.mark.parametrize("strategy", list(Strategy))
@pytest.mark.parametrize("n,k", [(2, 2), (5, 3), (8, 3), (7, 4), (12, 6), (4, 1)])
def test_reports_identical(strategy, n, k):
    threaded, simulated, _ = run_both(n, strategy, k, shuffle=True)
    for rank in range(n):
        t, s = threaded[rank], simulated.reports[rank]
        for field in COMPARED_FIELDS:
            assert getattr(t, field) == getattr(s, field), (strategy, n, k, rank, field)


@pytest.mark.parametrize("shuffle", [True, False])
def test_shuffle_modes_identical(shuffle):
    threaded, simulated, _ = run_both(9, Strategy.COLL_DEDUP, 3, shuffle=shuffle)
    for rank in range(9):
        assert threaded[rank].shuffle_position == simulated.reports[rank].shuffle_position
        assert threaded[rank].partners == simulated.reports[rank].partners
        assert threaded[rank].received_bytes == simulated.reports[rank].received_bytes


def test_placements_match_cluster_contents():
    """The simulator's placement map must predict exactly which node stores
    which fingerprint in the real run."""
    n = 8
    _threaded, simulated, cluster = run_both(n, Strategy.COLL_DEDUP, 3, shuffle=True)
    for fp, holders in simulated.placements.items():
        assert holders == set(cluster.replica_nodes(fp))
    # ... and nothing extra landed anywhere.
    for node in cluster.nodes:
        for fp in node.chunks.fingerprints():
            assert node.node_id in simulated.placements[fp]


def test_tight_f_threshold_equivalence():
    """The F cap changes which fingerprints get a global entry; both paths
    must agree on the resulting (degraded) dedup decisions."""
    threaded, simulated, _ = run_both(10, Strategy.COLL_DEDUP, 3, shuffle=True, f=3)
    for rank in range(10):
        for field in COMPARED_FIELDS:
            assert getattr(threaded[rank], field) == getattr(
                simulated.reports[rank], field
            ), field


def test_uneven_datasets_equivalence():
    from repro.core import Dataset

    def factory(rank):
        return Dataset([bytes([rank % 7]) * (CS * (1 + rank % 4)),
                        b"SHARED!" * CS])

    threaded, simulated, _ = run_both(
        9, Strategy.COLL_DEDUP, 3, shuffle=True, dataset_factory=factory
    )
    for rank in range(9):
        for field in COMPARED_FIELDS:
            assert getattr(threaded[rank], field) == getattr(
                simulated.reports[rank], field
            ), field
