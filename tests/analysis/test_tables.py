"""Table/series formatting."""

from repro.analysis.tables import format_series, format_table, human_bytes


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"], [["a", 1], ["bbbb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Every line is padded to the same total width.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[0.12345], [1234.5], [5.25], [0]])
        assert "0.123" in out
        assert "1234" in out or "1235" in out
        assert "5.2" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2


class TestFormatSeries:
    def test_columns_per_series(self):
        out = format_series("K", [1, 2], {"coll": [10, 20], "local": [30, 40]})
        lines = out.splitlines()
        assert "coll" in lines[0] and "local" in lines[0]
        assert "10" in lines[2] and "30" in lines[2]
        assert "20" in lines[3] and "40" in lines[3]


class TestHumanBytes:
    def test_units(self):
        assert human_bytes(500) == "500.0 B"
        assert human_bytes(1_500) == "1.5 KB"
        assert human_bytes(2_500_000) == "2.5 MB"
        assert human_bytes(3.2e9) == "3.2 GB"
        assert human_bytes(1e16) == "10.0 PB"
