"""Experiment runners: the harness the benchmarks stand on."""

import pytest

from repro.analysis.experiments import (
    WorkloadRunner,
    cm1_runner,
    fig2_example,
    hpccg_runner,
)
from repro.core import Strategy


class TestFig2Example:
    def test_reproduces_paper_numbers(self):
        out = fig2_example(k=3)
        assert out["naive_max_receive"] == 200
        assert out["shuffled_max_receive"] == 110

    def test_shuffle_is_permutation(self):
        out = fig2_example(k=3)
        assert sorted(out["shuffle"]) == list(range(6))


class TestWorkloadRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return hpccg_runner(nx=8)

    def test_run_produces_complete_record(self, runner):
        run = runner.run(8, Strategy.COLL_DEDUP, k=3)
        assert run.workload == "HPCCG"
        assert run.n_ranks == 8
        assert run.k == 3
        assert run.completion_s > run.increase_s > 0
        assert run.metrics.world_size == 8
        assert run.breakdown.total > 0
        assert run.volume_scale > 1  # scaled-down working set

    def test_index_cache_reused(self, runner):
        first = runner.indices(8)
        second = runner.indices(8)
        assert first is second

    def test_run_strategies_covers_all(self, runner):
        runs = runner.run_strategies(8, k=2)
        assert set(runs) == set(Strategy)

    def test_strategy_ordering_holds(self, runner):
        runs = runner.run_strategies(8, k=3)
        assert (
            runs[Strategy.COLL_DEDUP].completion_s
            <= runs[Strategy.LOCAL_DEDUP].completion_s
            <= runs[Strategy.NO_DEDUP].completion_s
        )

    def test_cm1_runner_constructs(self):
        runner = cm1_runner(nx=8, nz=4)
        run = runner.run(4, Strategy.COLL_DEDUP)
        assert run.workload == "CM1"
        assert run.completion_s > 0

    def test_increase_is_checkpoints_times_dump(self):
        runner = cm1_runner(nx=8, nz=4)
        run = runner.run(4, Strategy.LOCAL_DEDUP)
        assert run.increase_s == pytest.approx(2 * run.breakdown.total)


class TestRunnerExtensions:
    def test_dedup_domain_parameter(self):
        runner = hpccg_runner(nx=8)
        global_run = runner.run(8, Strategy.COLL_DEDUP, k=3)
        domain_run = runner.run(8, Strategy.COLL_DEDUP, k=3, dedup_domain_size=2)
        assert sum(domain_run.metrics.per_rank_sent) >= sum(
            global_run.metrics.per_rank_sent
        )

    def test_node_aware_parameter(self):
        from repro.netsim.machine import MachineProfile

        runner = hpccg_runner(
            nx=8, machine=MachineProfile.shamrock().with_(placement="block")
        )
        plain = runner.run(24, Strategy.COLL_DEDUP, k=3, node_aware=False)
        aware = runner.run(24, Strategy.COLL_DEDUP, k=3, node_aware=True)
        assert aware.metrics.node_replication_min >= plain.metrics.node_replication_min
