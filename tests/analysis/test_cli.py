"""The repro-eval command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.app == "hpccg"
        assert args.n == [64]
        assert args.k == 3

    def test_multi_n(self):
        args = build_parser().parse_args(["fig3a", "--app", "cm1", "--n", "12", "120"])
        assert args.n == [12, 120]

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--app", "lammps"])


class TestCommands:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "200" in out and "110" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--app", "hpccg", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "no-dedup" in out and "baseline" in out

    def test_fig3a_small(self, capsys):
        assert main(["fig3a", "--app", "cm1", "--n", "9"]) == 0
        out = capsys.readouterr().out
        assert "unique content" in out
        assert "%" in out

    def test_sweep_k_small(self, capsys):
        assert main(["sweep-k", "--app", "cm1", "--n", "9", "--k", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "coll-dedup" in out

    def test_shuffle_small(self, capsys):
        assert main(["shuffle", "--app", "cm1", "--n", "9", "--k", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "coll-no-shuffle" in out


class TestRepairCommand:
    def test_repair_small(self, capsys):
        assert main(["repair", "--n", "6", "--k", "3", "--fail", "2"]) == 0
        out = capsys.readouterr().out
        assert "post-repair audit: all recoverable" in out
        assert "moved (repair)" in out
        assert "modelled repair time" in out

    def test_repair_defaults(self):
        args = build_parser().parse_args(["repair"])
        assert args.n == [8] and args.k == 3 and args.fail == 2

    def test_repair_rejects_failing_every_node(self):
        with pytest.raises(SystemExit):
            main(["repair", "--n", "4", "--fail", "4"])


class TestTraceCommands:
    def test_record_then_analyze(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        perfetto = tmp_path / "perfetto.json"
        assert main([
            "trace-record", "--n", "3", "--chunks-per-rank", "4",
            "--out", str(out), "--perfetto", str(perfetto),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "3 ranks" in stdout and "spans" in stdout
        assert "ui.perfetto.dev" in stdout
        assert out.exists() and perfetto.exists()

        assert main(["trace", str(out)]) == 0
        report = capsys.readouterr().out
        assert "critical path" in report
        assert "rank skew" in report

    def test_trace_record_defaults(self):
        args = build_parser().parse_args(["trace-record"])
        assert args.n == 4 and args.k == 3
        assert args.backend is None
        assert args.out == "trace_run.json"


class TestErrorExitCodes:
    def test_unknown_subcommand_one_line_error(self, capsys):
        assert main(["bogus-subcmd"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "invalid choice" in err

    def test_no_subcommand_exits_nonzero(self, capsys):
        assert main([]) == 2
        assert capsys.readouterr().err.count("\n") == 1

    def test_bad_backend_exits_nonzero(self, capsys):
        assert main(["trace-record", "--backend", "banana"]) == 2
        err = capsys.readouterr().err
        assert "repro-eval: unknown SPMD backend 'banana'" in err

    def test_missing_trace_file_exits_nonzero(self, capsys):
        assert main(["trace", "/nonexistent/run.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-eval: ")
        assert err.count("\n") == 1

    def test_malformed_snapshot_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["trace", str(path)]) == 2
        assert "repro-eval: " in capsys.readouterr().err

    def test_bad_flag_value_one_line_error(self, capsys):
        assert main(["trace-record", "--n", "many"]) == 2
        assert "invalid int value" in capsys.readouterr().err
