"""Rabin rolling fingerprint: the rolling value must equal a from-scratch
recomputation of the current window at every position."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdc.rabin import RabinFingerprint


class TestRolling:
    def test_matches_oracle_on_fixed_input(self):
        rf = RabinFingerprint(window_size=8)
        data = bytes(range(1, 64))
        for i, byte in enumerate(data):
            rolled = rf.push(byte)
            window = data[max(0, i + 1 - 8) : i + 1]
            assert rolled == rf.fingerprint_of(window), i

    @given(st.binary(min_size=1, max_size=300), st.integers(2, 32))
    @settings(max_examples=20)
    def test_matches_oracle_property(self, data, window_size):
        rf = RabinFingerprint(window_size=window_size)
        for i, byte in enumerate(data):
            rolled = rf.push(byte)
            window = data[max(0, i + 1 - window_size) : i + 1]
            assert rolled == rf.fingerprint_of(window)

    def test_window_locality(self):
        """The fingerprint depends only on the last window_size bytes."""
        rf_a = RabinFingerprint(window_size=16)
        rf_b = RabinFingerprint(window_size=16)
        tail = bytes(range(100, 116))
        rf_a.update(b"PREFIX-ONE-" + tail)
        rf_b.update(b"completely different prefix " + tail)
        assert rf_a.value == rf_b.value

    def test_fingerprint_stays_in_field(self):
        rf = RabinFingerprint(window_size=48)
        for byte in bytes(range(256)) * 4:
            fp = rf.push(byte)
            assert 0 <= fp < (1 << rf.degree)

    def test_reset(self):
        rf = RabinFingerprint(window_size=4)
        rf.update(b"abcdef")
        rf.reset()
        assert rf.value == 0
        first = rf.push(ord("x"))
        rf2 = RabinFingerprint(window_size=4)
        assert rf2.push(ord("x")) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            RabinFingerprint(window_size=0)
        with pytest.raises(ValueError):
            RabinFingerprint(poly=1)

    def test_different_polys_differ(self):
        a = RabinFingerprint(window_size=8, poly=0x3DA3358B4DC173)
        b = RabinFingerprint(window_size=8, poly=0x1FFFFFFFFFE5)  # other poly
        data = b"some test data!"
        assert a.update(data) != b.update(data)
