"""CDC chunker properties (hypothesis): losslessness, size bounds,
edit locality.

Edit locality comes in two strengths and the tests keep them apart:

* *prefix stability* is exact and data-independent — the chunker scans
  left to right and restarts its rolling window at each cut, so every
  boundary at or before the edited byte is decided by unedited bytes
  alone and must survive verbatim;
* the *bounded re-chunk window* after the edit is probabilistic — a
  pathological buffer (e.g. constant bytes never matching the magic
  residue) degenerates to max-size cuts everywhere and an edit can shift
  the whole tail.  On random data the expected resynchronization distance
  is a few average chunk sizes, so the property is asserted on seeded
  random buffers with a deliberately generous envelope.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.cdc.chunker import CDCChunker, CDCParams

PARAMS = CDCParams(min_size=16, avg_size=64, max_size=256, window_size=16)


def chunker():
    return CDCChunker(PARAMS)


def random_buffer(seed, length):
    return np.random.RandomState(seed).bytes(length)


@given(st.binary(min_size=0, max_size=4096))
def test_concatenation_reconstructs_input(data):
    assert b"".join(chunker().split(data)) == data


@given(st.binary(min_size=1, max_size=4096))
def test_chunk_sizes_respect_bounds(data):
    chunks = chunker().split(data)
    assert all(len(c) <= PARAMS.max_size for c in chunks)
    # every chunk but the trailer reaches min_size; the trailer is
    # whatever bytes remain after the last content-defined cut
    assert all(len(c) >= PARAMS.min_size for c in chunks[:-1])


@given(st.binary(min_size=1, max_size=4096))
def test_boundaries_are_strictly_increasing_and_cover(data):
    ends = chunker().boundaries(data)
    assert ends == sorted(set(ends))
    assert ends[-1] == len(data)


@given(
    st.integers(0, 2**31 - 1),
    st.integers(1024, 8192),
    st.data(),
)
def test_single_byte_edit_preserves_prefix_boundaries(seed, length, data):
    buf = random_buffer(seed, length)
    pos = data.draw(st.integers(0, length - 1))
    new_byte = data.draw(st.integers(0, 255).filter(lambda b: b != buf[pos]))
    edited = buf[:pos] + bytes([new_byte]) + buf[pos + 1:]
    before = [e for e in chunker().boundaries(buf) if e <= pos]
    after = [e for e in chunker().boundaries(edited) if e <= pos]
    assert before == after


@given(
    st.integers(0, 2**31 - 1),
    st.integers(2048, 8192),
    st.data(),
)
def test_single_byte_edit_rechunks_bounded_window(seed, length, data):
    buf = random_buffer(seed, length)
    pos = data.draw(st.integers(0, length - 1))
    new_byte = data.draw(st.integers(0, 255).filter(lambda b: b != buf[pos]))
    edited = buf[:pos] + bytes([new_byte]) + buf[pos + 1:]
    changed = set(chunker().boundaries(buf)) ^ set(
        chunker().boundaries(edited)
    )
    lo = pos - PARAMS.max_size
    hi = pos + 8 * PARAMS.max_size
    assert all(lo <= e <= hi for e in changed), (
        f"edit at {pos} moved boundaries outside [{lo}, {hi}]: "
        f"{sorted(changed)}"
    )
