"""Content-defined chunking: bounds, determinism, insert-shift locality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdc.chunker import CDCChunker, CDCParams, cdc_split


def pseudo_random(n, seed=7):
    """Deterministic byte stream with enough entropy to hit boundaries.

    (Hash-based — an LCG's low byte has period 256, which starves the
    content-defined boundary condition of entropy.)
    """
    import hashlib

    out = bytearray()
    i = 0
    tag = seed.to_bytes(4, "little")
    while len(out) < n:
        out.extend(hashlib.blake2b(tag + i.to_bytes(4, "little")).digest())
        i += 1
    return bytes(out[:n])


class TestBasics:
    def test_join_identity(self):
        data = pseudo_random(50_000)
        chunks = cdc_split(data, 64, 256, 1024)
        assert b"".join(chunks) == data

    def test_size_bounds_respected(self):
        data = pseudo_random(50_000)
        chunks = cdc_split(data, 64, 256, 1024)
        for chunk in chunks[:-1]:
            assert 64 <= len(chunk) <= 1024
        assert len(chunks[-1]) <= 1024

    def test_average_size_near_target(self):
        data = pseudo_random(200_000)
        chunks = cdc_split(data, 64, 256, 4096)
        avg = len(data) / len(chunks)
        assert 128 < avg < 768  # within 2x of the 256 target

    def test_empty_input(self):
        assert cdc_split(b"") == []

    def test_deterministic(self):
        data = pseudo_random(10_000)
        assert cdc_split(data, 64, 256, 1024) == cdc_split(data, 64, 256, 1024)

    def test_low_entropy_hits_max_size(self):
        """Constant data never matches the magic: every chunk is max-sized."""
        data = b"\x00" * 10_000
        chunks = cdc_split(data, 64, 256, 512)
        for chunk in chunks[:-1]:
            assert len(chunk) == 512

    def test_param_validation(self):
        with pytest.raises(ValueError):
            CDCParams(min_size=10, avg_size=4, max_size=100)
        with pytest.raises(ValueError):
            CDCParams(min_size=1, avg_size=100, max_size=1000)  # not power of 2

    def test_boundaries_end_at_len(self):
        data = pseudo_random(5000)
        bounds = CDCChunker(CDCParams(64, 256, 1024)).boundaries(data)
        assert bounds[-1] == len(data)
        assert bounds == sorted(bounds)


class TestInsertShiftRobustness:
    """The reason CDC exists: a local edit must only re-chunk its
    neighbourhood, unlike fixed-size chunking where everything after the
    edit shifts."""

    def test_insertion_preserves_most_chunks(self):
        data = pseudo_random(100_000)
        edited = data[:50_000] + b"INSERTED BYTES" + data[50_000:]
        params = (64, 256, 1024)
        original = set(cdc_split(data, *params))
        changed = cdc_split(edited, *params)
        unchanged = sum(1 for c in changed if c in original)
        assert unchanged / len(changed) > 0.8

    def test_fixed_size_chunking_shifts_everything(self):
        """Contrast baseline: the same edit destroys almost all fixed-size
        chunks after the insertion point."""
        from repro.core.chunking import split_chunks

        data = pseudo_random(100_000)
        edited = data[:50_000] + b"X" + data[50_000:]
        original = set(split_chunks(data, 256))
        changed = split_chunks(edited, 256)
        unchanged = sum(1 for c in changed if c in original)
        assert unchanged / len(changed) < 0.55

    def test_resynchronization_after_edit(self):
        """Far from the edit the chunk streams must be identical again."""
        data = pseudo_random(80_000)
        edited = data[:10_000] + b"@@@" + data[10_000:]
        a = cdc_split(data, 64, 256, 1024)
        b = cdc_split(edited, 64, 256, 1024)
        # The tails (last 20 chunks) must match exactly.
        assert a[-20:] == b[-20:]

    @given(st.integers(0, 49_999), st.binary(min_size=1, max_size=20))
    @settings(max_examples=10)
    def test_edit_locality_property(self, pos, insert):
        data = pseudo_random(50_000)
        edited = data[:pos] + insert + data[pos:]
        original = set(cdc_split(data, 64, 256, 1024))
        changed = cdc_split(edited, 64, 256, 1024)
        unchanged = sum(1 for c in changed if c in original)
        assert unchanged / max(len(changed), 1) > 0.5
