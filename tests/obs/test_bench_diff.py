"""Bench regression gating: diff semantics and the CLI exit contract."""

import json

import pytest

from repro.cli import main
from repro.obs.bench_diff import (
    DEFAULT_TOLERANCE,
    diff_bench,
    format_bench_diff,
    load_bench,
)
from repro.obs.schema import SchemaError, bench_document


def make_doc(**timings_by_bench):
    """A bench document from ``name=(timings_dict, speedup)`` pairs."""
    benchmarks = {
        name: {"timings": dict(timings), "speedup": speedup}
        for name, (timings, speedup) in timings_by_bench.items()
    }
    return bench_document("host-a", 8, False, benchmarks)


BASELINE = make_doc(
    dump=({"packed": 0.100, "legacy": 0.400}, 4.0),
    restore=({"batched": 0.050}, None),
)


class TestDiff:
    def test_identical_documents_are_clean(self):
        diff = diff_bench(BASELINE, BASELINE)
        assert diff.ok
        assert not diff.regressions
        assert diff.notes == []

    def test_slowdown_past_tolerance_is_a_regression(self):
        fresh = make_doc(
            dump=({"packed": 0.130, "legacy": 0.400}, 4.0),  # +30 %
            restore=({"batched": 0.050}, None),
        )
        diff = diff_bench(fresh, BASELINE)
        assert not diff.ok
        (reg,) = diff.regressions
        assert (reg.benchmark, reg.label) == ("dump", "packed")
        assert reg.ratio == pytest.approx(1.3)

    def test_slowdown_within_tolerance_passes(self):
        fresh = make_doc(
            dump=({"packed": 0.120, "legacy": 0.400}, 4.0),  # +20 %
            restore=({"batched": 0.050}, None),
        )
        assert diff_bench(fresh, BASELINE).ok

    def test_speedup_collapse_is_a_regression(self):
        fresh = make_doc(
            dump=({"packed": 0.100, "legacy": 0.400}, 2.0),  # 4x -> 2x
            restore=({"batched": 0.050}, None),
        )
        diff = diff_bench(fresh, BASELINE)
        (reg,) = diff.regressions
        assert reg.kind == "speedup"
        assert reg.ratio == pytest.approx(2.0)

    def test_sub_floor_timings_are_skipped_with_a_note(self):
        base = make_doc(fast=({"hot": 0.0002}, None))
        fresh = make_doc(fast=({"hot": 0.0009}, None))  # 4.5x but sub-ms
        diff = diff_bench(fresh, base)
        assert diff.ok
        assert diff.rows == []
        assert any("floor" in note for note in diff.notes)

    def test_one_sided_benchmarks_noted_never_fatal(self):
        fresh = make_doc(
            dump=({"packed": 0.100, "legacy": 0.400}, 4.0),
            brand_new=({"x": 0.5}, None),
        )
        diff = diff_bench(fresh, BASELINE)
        assert diff.ok
        notes = "\n".join(diff.notes)
        assert "no baseline" in notes
        assert "missing from fresh" in notes  # restore dropped

    def test_host_mismatch_noted(self):
        fresh = dict(BASELINE, host="host-b")
        diff = diff_bench(fresh, BASELINE)
        assert any("host differs" in note for note in diff.notes)
        assert diff.ok  # a note, not a verdict

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_bench(BASELINE, BASELINE, tolerance=0.0)

    def test_malformed_document_rejected(self):
        with pytest.raises(SchemaError):
            diff_bench({"schema": "bogus"}, BASELINE)

    def test_format_flags_regressions(self):
        fresh = make_doc(
            dump=({"packed": 0.200, "legacy": 0.400}, 4.0),
            restore=({"batched": 0.050}, None),
        )
        text = format_bench_diff(diff_bench(fresh, BASELINE))
        assert "REGRESSION" in text
        assert f"tolerance {DEFAULT_TOLERANCE:.0%}" in text


class TestCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        assert main(["bench-diff", base, base]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_exits_two(self, tmp_path, capsys):
        fresh_doc = make_doc(
            dump=({"packed": 0.140, "legacy": 0.400}, 4.0),
            restore=({"batched": 0.050}, None),
        )
        base = self.write(tmp_path, "base.json", BASELINE)
        fresh = self.write(tmp_path, "fresh.json", fresh_doc)
        with pytest.raises(SystemExit) as exc:
            main(["bench-diff", fresh, base])
        assert exc.value.code == 2
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        fresh_doc = make_doc(
            dump=({"packed": 0.140, "legacy": 0.400}, 4.0),
            restore=({"batched": 0.050}, None),
        )
        base = self.write(tmp_path, "base.json", BASELINE)
        fresh = self.write(tmp_path, "fresh.json", fresh_doc)
        assert main(["bench-diff", fresh, base, "--tolerance", "0.5"]) == 0

    def test_missing_file_exits_two(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        assert main(["bench-diff", str(tmp_path / "nope.json"), base]) == 2

    def test_load_bench_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "bogus"}))
        with pytest.raises(SchemaError):
            load_bench(path)
