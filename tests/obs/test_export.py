"""Run snapshots and their Chrome-trace / Prometheus renderings."""

import json

import pytest

from repro.obs.export import (
    capture_run,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_run,
)
from repro.obs.schema import RUN_SCHEMA_ID, SchemaError, validate_run
from repro.simmpi.trace import Trace


def make_trace(rank):
    t = Trace(rank=rank)
    t.configure("span")
    with t.phase("dump"):
        with t.phase("hash"):
            t.record_send(100 * (rank + 1))
    t.metrics.counter("puts").inc(rank + 1)
    t.metrics.gauge("dedup_ratio").set(0.5)
    t.metrics.histogram("chunk_size_bytes").observe(256, 3)
    return t


class FakeComm:
    def __init__(self, trace):
        self.trace = trace


class FakeWorld:
    def __init__(self, comms):
        self.comms = comms


class TestCaptureRun:
    def test_from_trace_list_sorted_by_rank(self):
        run = capture_run([make_trace(1), make_trace(0)], meta={"n": 2})
        assert run["schema"] == RUN_SCHEMA_ID
        assert [entry["rank"] for entry in run["ranks"]] == [0, 1]
        assert run["meta"] == {"n": 2}
        validate_run(run)

    def test_from_world_with_comm_shells(self):
        world = FakeWorld([FakeComm(make_trace(0)), FakeComm(make_trace(1))])
        run = capture_run(world)
        assert len(run["ranks"]) == 2
        assert run["ranks"][0]["level"] == "span"
        assert [s["name"] for s in run["ranks"][0]["spans"]] == ["dump", "hash"]

    def test_none_comms_skipped(self):
        world = FakeWorld([None, FakeComm(make_trace(1))])
        run = capture_run(world)
        assert [entry["rank"] for entry in run["ranks"]] == [1]

    def test_no_traces_raises(self):
        with pytest.raises(ValueError, match="no rank traces"):
            capture_run([])

    def test_aggregates_metrics_across_ranks(self):
        run = capture_run([make_trace(0), make_trace(1)])
        assert run["metrics"]["counters"]["puts"]["total"] == 3
        assert run["metrics"]["histograms"]["chunk_size_bytes"]["count"] == 6

    def test_phase_counters_survive(self):
        run = capture_run([make_trace(0)])
        phases = run["ranks"][0]["phases"]
        assert phases["hash"]["sent_bytes"] == 100
        assert phases["dump"]["seconds"] > 0


class TestWriteRun:
    def test_round_trip(self, tmp_path):
        run = capture_run([make_trace(0)])
        path = write_run(tmp_path / "run.json", run)
        assert json.loads(path.read_text()) == run

    def test_rejects_invalid(self, tmp_path):
        with pytest.raises(SchemaError):
            write_run(tmp_path / "run.json", {"schema": "bogus"})
        assert not (tmp_path / "run.json").exists()


class TestChromeTrace:
    def test_one_track_per_rank(self):
        run = capture_run([make_trace(0), make_trace(1)])
        doc = chrome_trace(run)
        events = doc["traceEvents"]
        names = {
            (e["tid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {(0, "rank 0"), (1, "rank 1")}
        x_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert x_tids == {0, 1}

    def test_timestamps_normalised_microseconds(self):
        run = capture_run([make_trace(0), make_trace(1)])
        xs = [e for e in chrome_trace(run)["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)

    def test_nested_slice_within_parent(self):
        run = capture_run([make_trace(0)])
        xs = {
            e["name"]: e
            for e in chrome_trace(run)["traceEvents"]
            if e["ph"] == "X"
        }
        dump, hashed = xs["dump"], xs["hash"]
        assert dump["ts"] <= hashed["ts"]
        assert hashed["ts"] + hashed["dur"] <= dump["ts"] + dump["dur"] + 1e-6

    def test_write_chrome_trace(self, tmp_path):
        run = capture_run([make_trace(0)])
        path = write_chrome_trace(tmp_path / "perfetto.json", run)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestPrometheusText:
    def test_phase_counter_samples(self):
        text = prometheus_text(capture_run([make_trace(0), make_trace(1)]))
        assert "# TYPE repro_phase_sent_bytes counter" in text
        assert "# TYPE repro_phase_seconds gauge" in text
        assert 'repro_phase_sent_bytes{phase="hash",rank="0"} 100' in text
        assert 'repro_phase_sent_bytes{phase="hash",rank="1"} 200' in text

    def test_per_rank_metric_samples(self):
        text = prometheus_text(capture_run([make_trace(0), make_trace(1)]))
        assert 'repro_puts{rank="1"} 2' in text
        assert 'repro_dedup_ratio{rank="0"} 0.5' in text

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(capture_run([make_trace(0), make_trace(1)]))
        assert "# TYPE repro_chunk_size_bytes histogram" in text
        assert 'repro_chunk_size_bytes_bucket{le="256.0"} 6' in text
        assert 'repro_chunk_size_bytes_bucket{le="+Inf"} 6' in text
        assert "repro_chunk_size_bytes_count 6" in text
        assert "repro_chunk_size_bytes_sum 1536" in text


def parse_exposition(text):
    """Parse Prometheus text exposition into ``(types, samples)``.

    ``types`` maps family name -> declared TYPE; ``samples`` is a list of
    ``(metric, labels_dict, value)``.  A minimal spec-shaped parser — its
    point is that the exporter's output survives being *read back*, not
    just string-matched.
    """
    types, samples = {}, []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ", 3)
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        labels = {}
        if "{" in name_part:
            metric, _, raw = name_part.partition("{")
            for pair in raw.rstrip("}").split(","):
                key, _, val = pair.partition("=")
                labels[key] = val.strip('"')
        else:
            metric = name_part
        samples.append((metric, labels, float(value)))
    return types, samples


class TestPrometheusRoundTrip:
    """Spec-completeness via parse-back: every sample belongs to a typed
    family, histograms are cumulative with ``+Inf`` == ``_count``, and
    sketch summaries expose quantiles plus the ``_sum``/``_count`` pair."""

    def make_run(self):
        traces = []
        for rank in range(2):
            t = make_trace(rank)
            sk = t.metrics.sketch("restore_latency_sketch")
            sk.observe_many([0.1 * (i + rank) for i in range(20)])
            traces.append(t)
        return capture_run(traces)

    def base_family(self, metric):
        for suffix in ("_bucket", "_sum", "_count"):
            if metric.endswith(suffix):
                return metric[: -len(suffix)]
        return metric

    def test_every_sample_has_a_typed_family(self):
        types, samples = parse_exposition(prometheus_text(self.make_run()))
        assert samples
        for metric, _labels, _value in samples:
            family = self.base_family(metric)
            assert family in types, f"{metric} has no # TYPE"

    def test_histogram_round_trips_cumulative(self):
        types, samples = parse_exposition(prometheus_text(self.make_run()))
        hist_families = [f for f, kind in types.items() if kind == "histogram"]
        assert hist_families
        for family in hist_families:
            buckets = [
                (labels["le"], value)
                for metric, labels, value in samples
                if metric == f"{family}_bucket"
            ]
            counts = [v for _le, v in buckets]
            assert counts == sorted(counts), f"{family} buckets not cumulative"
            assert buckets[-1][0] == "+Inf"
            (count,) = [
                v for m, _l, v in samples if m == f"{family}_count"
            ]
            assert buckets[-1][1] == count
            assert any(m == f"{family}_sum" for m, _l, _v in samples)

    def test_sketch_round_trips_as_summary(self):
        types, samples = parse_exposition(prometheus_text(self.make_run()))
        family = "repro_restore_latency_sketch"
        assert types[family] == "summary"
        quantiles = {
            labels["quantile"]: value
            for metric, labels, value in samples
            if metric == family and "quantile" in labels
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99", "0.999"}
        ordered = [quantiles[q] for q in ("0.5", "0.95", "0.99", "0.999")]
        assert ordered == sorted(ordered)
        (count,) = [v for m, _l, v in samples if m == f"{family}_count"]
        assert count == 40  # 20 observations per rank, merged
        assert any(m == f"{family}_sum" for m, _l, _v in samples)
