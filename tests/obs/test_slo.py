"""The SLO engine: objective grammar, burn-rate alerting, replay determinism."""

import pytest

from repro.obs.schema import validate_slo
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLOEngine,
    SLOError,
    format_slo_report,
    parse_objective,
)
from repro.obs.timeline import TimelineStore


def make_engine(**kwargs):
    kwargs.setdefault("objectives", ("dump.queue_wait_ticks.p95 < 2",))
    kwargs.setdefault("windows", ((4, 1.0), (2, 1.0)))
    kwargs.setdefault("min_samples", 2)
    return SLOEngine(**kwargs)


def drive(engine, timeline, waits, start_tick=1):
    """One dump sample per tick with the given queue waits, advancing the
    engine each tick the way the service's ``_after_tick`` hook does."""
    for i, wait in enumerate(waits):
        tick = start_tick + i
        timeline.record("dump", tick, queue_wait_ticks=float(wait))
        engine.advance(timeline, tick)


class TestGrammar:
    def test_parse_round_trip(self):
        obj = parse_objective("dump.queue_wait_ticks.p95 < 2")
        assert (obj.op, obj.field, obj.stat) == (
            "dump", "queue_wait_ticks", "p95"
        )
        assert obj.cmp == "<" and obj.threshold == 2.0
        assert obj.budget == pytest.approx(0.05)
        assert obj.spec() == "dump.queue_wait_ticks.p95 < 2"

    def test_dotted_field_names(self):
        obj = parse_objective("restore.span.total_s.p50 <= 1.5")
        assert obj.field == "span.total_s"
        assert obj.percentile == 50.0

    @pytest.mark.parametrize("bad", [
        "dump.latency.p95",            # no comparator/threshold
        "dump.p95 < 2",                # too few target pieces
        "dump.latency.p42 < 2",        # unknown stat
        "dump.latency.p95 != 2",       # unknown comparator
        "dump.latency.p95 < fast",     # non-numeric threshold
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SLOError):
            parse_objective(bad)

    def test_violates_respects_comparator(self):
        lt = parse_objective("dump.w.p95 < 2")
        assert lt.violates(2.0) and not lt.violates(1.9)
        ge = parse_objective("restore.locality.p50 >= 0.5")
        assert ge.violates(0.4) and not ge.violates(0.5)


class TestEngineConstruction:
    def test_needs_an_objective(self):
        with pytest.raises(SLOError, match="at least one objective"):
            SLOEngine(objectives=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(SLOError, match="duplicate"):
            SLOEngine(objectives=(
                "dump.w.p95 < 2", "dump.w.p95 < 5",
            ))

    def test_rejects_empty_windows(self):
        with pytest.raises(SLOError, match="windows"):
            make_engine(windows=())

    def test_default_objectives_parse(self):
        engine = SLOEngine(DEFAULT_OBJECTIVES)
        assert engine.objectives


class TestBurnRate:
    def test_quiet_timeline_never_fires(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [0, 0, 1, 0, 1, 0])
        assert engine.alerts == []
        assert not any(engine.firing.values())

    def test_fires_then_resolves(self):
        engine, tl = make_engine(), TimelineStore()
        # Saturate both windows with violations (wait >= threshold 2) ...
        drive(engine, tl, [5, 5, 5, 5])
        fires = [a for a in engine.alerts if a["event"] == "fire"]
        assert len(fires) == 1
        assert engine.firing["dump.queue_wait_ticks.p95"]
        # ... then let the short window drain back under budget.
        drive(engine, tl, [0, 0, 0, 0], start_tick=5)
        events = [a["event"] for a in engine.alerts]
        assert events == ["fire", "resolve"]
        assert not engine.firing["dump.queue_wait_ticks.p95"]

    def test_min_samples_gates_firing(self):
        engine = make_engine(min_samples=10)
        tl = TimelineStore()
        drive(engine, tl, [5, 5, 5, 5])
        assert engine.alerts == []

    def test_needs_every_window_burning(self):
        # p50 budget (50 %) with a stricter short-window burn bar: the
        # alternating pattern keeps the long window at burn 1.0+ while
        # the short window never reaches its 1.9 — the alert needs both.
        engine = SLOEngine(
            objectives=("dump.w.p50 < 2",),
            windows=((4, 1.0), (2, 1.9)),
            min_samples=2,
        )
        tl = TimelineStore()
        for tick, wait in enumerate([5, 0, 5, 0], start=1):
            tl.record("dump", tick, w=float(wait))
            engine.advance(tl, tick)
        assert engine.alerts == []
        status = engine.evaluate(tl, 3)[0]
        assert status.windows[0].burn >= 1.0
        assert status.windows[1].burn < 1.9

    def test_alert_events_carry_window_accounting(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [5, 5, 5, 5])
        (fire,) = engine.alerts
        assert fire["event"] == "fire"
        assert {w["ticks"] for w in fire["windows"]} == {4, 2}
        assert all(w["burn"] >= 1.0 for w in fire["windows"])


class TestReplay:
    def test_replay_matches_live_alerts(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [0, 5, 5, 5, 5, 0, 0, 0, 5, 5, 5, 5])
        assert engine.alerts  # the scenario actually alerted
        assert engine.replay(tl) == engine.alerts

    def test_replay_does_not_mutate_the_engine(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [5, 5, 5, 5])
        before = list(engine.alerts)
        engine.replay(tl)
        assert engine.alerts == before


class TestVerdict:
    def test_verdict_validates_and_is_timestamp_free(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [5, 5, 5, 5])
        doc = engine.verdict(tl)
        validate_slo(doc)
        assert doc["alert_count"] == 1
        assert doc["ok"] is False
        assert doc["firing"] == ["dump.queue_wait_ticks.p95"]
        assert doc["op_counts"] == {"dump": 4}
        # Nothing wall-clock-shaped may leak into the verdict.
        assert "time" not in str(sorted(doc)).lower()

    def test_quiet_verdict_is_ok(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [0, 0, 0])
        doc = engine.verdict()
        validate_slo(doc)
        assert doc["ok"] is True and doc["alerts"] == []


class TestReport:
    def test_report_shows_state_and_trail(self):
        engine, tl = make_engine(), TimelineStore()
        drive(engine, tl, [5, 5, 5, 5])
        text = format_slo_report(engine, tl)
        assert "FIRING" in text
        assert "fire@t" in text
        assert "dump.queue_wait_ticks.p95 < 2" in text

    def test_report_without_samples(self):
        engine, tl = make_engine(), TimelineStore()
        text = format_slo_report(engine, tl)
        assert "no samples" in text
