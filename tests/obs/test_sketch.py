"""Quantile sketches: accuracy against exact percentiles, merging, state.

The property tests pin the module's documented accuracy contract: any
reported quantile must lie between the exact pooled-sample values at
ranks ``q ± rank_error_bound`` — including after merging per-rank
sketches, the path cross-rank aggregation actually takes.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sketch import DEFAULT_COMPRESSION, QuantileSketch


def rank_window(samples, q, rank_error):
    """Exact values at ranks ``q ± rank_error`` of ``samples``."""
    lo_q = max(0.0, q - rank_error * 100.0)
    hi_q = min(100.0, q + rank_error * 100.0)
    return (
        float(np.percentile(samples, lo_q)),
        float(np.percentile(samples, hi_q)),
    )


def assert_within_bound(sketch, samples, q):
    lo, hi = rank_window(samples, q, sketch.rank_error_bound)
    got = sketch.percentile(q)
    assert lo <= got <= hi, (
        f"p{q}: {got} outside exact-rank window [{lo}, {hi}] "
        f"for {len(samples)} samples"
    )


class TestBasics:
    def test_empty(self):
        sk = QuantileSketch()
        assert sk.count == 0
        assert sk.percentile(50) == 0.0
        assert sk.summary()["p99"] == 0.0

    def test_single_value(self):
        sk = QuantileSketch()
        sk.observe(3.5)
        for q in (0, 50, 100):
            assert sk.percentile(q) == 3.5

    def test_moments(self):
        sk = QuantileSketch()
        sk.observe_many([1.0, 2.0, 3.0, 4.0])
        assert sk.count == 4
        assert sk.sum == 10.0
        assert sk.mean == 2.5
        assert sk.min == 1.0 and sk.max == 4.0

    def test_observe_weighted(self):
        sk = QuantileSketch()
        sk.observe(2.0, n=10)
        assert sk.count == 10
        assert sk.sum == 20.0

    def test_rejects_tiny_compression(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=4)

    def test_percentile_bounds_checked(self):
        sk = QuantileSketch()
        sk.observe(1.0)
        with pytest.raises(ValueError):
            sk.percentile(101)

    def test_observe_many_ndarray_fast_path(self):
        sk = QuantileSketch()
        sk.observe_many(np.arange(1000, dtype=np.int64))
        assert sk.count == 1000
        assert sk.max == 999.0

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(size=5000)
        a, b = QuantileSketch(), QuantileSketch()
        a.observe_many(values)
        b.observe_many(values)
        assert a.as_dict() == b.as_dict()
        assert a.quantiles() == b.quantiles()


class TestAccuracy:
    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0, 99.9])
    def test_lognormal_within_documented_bound(self, q):
        rng = np.random.default_rng(42)
        samples = rng.lognormal(mean=0.0, sigma=1.5, size=20000)
        sk = QuantileSketch()
        sk.observe_many(samples)
        assert_within_bound(sk, samples, q)

    def test_quantiles_monotone(self):
        rng = np.random.default_rng(3)
        sk = QuantileSketch()
        sk.observe_many(rng.normal(size=10000))
        qs = sk.quantiles((1, 10, 25, 50, 75, 90, 99))
        assert qs == sorted(qs)

    def test_extremes_exact(self):
        rng = np.random.default_rng(11)
        samples = rng.uniform(size=3000)
        sk = QuantileSketch()
        sk.observe_many(samples)
        assert sk.percentile(0) == samples.min()
        assert sk.percentile(100) == samples.max()


class TestMerge:
    def test_merged_moments(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.observe_many([1.0, 2.0])
        b.observe_many([3.0, 4.0])
        a.merge(b)
        assert a.count == 4
        assert a.sum == 10.0
        assert a.min == 1.0 and a.max == 4.0

    def test_merge_empty_is_identity(self):
        a = QuantileSketch()
        a.observe_many([1.0, 2.0, 3.0])
        before = a.quantiles()
        a.merge(QuantileSketch())
        assert a.quantiles() == before

    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_ranks=st.integers(2, 8),
        per_rank=st.integers(50, 800),
        sigma=st.floats(0.1, 2.0),
    )
    def test_merged_sketch_within_bound_of_pooled_exact(
        self, seed, n_ranks, per_rank, sigma
    ):
        """The ISSUE acceptance property: merge per-rank sketches (as
        cross-rank aggregation does) and require every report quantile to
        sit within the documented rank-error window of exact
        ``np.percentile`` over the pooled samples."""
        rng = np.random.default_rng(seed)
        merged = QuantileSketch()
        pooled = []
        for _rank in range(n_ranks):
            samples = rng.lognormal(sigma=sigma, size=per_rank)
            pooled.append(samples)
            sk = QuantileSketch()
            sk.observe_many(samples)
            merged.merge(sk)
        pooled = np.concatenate(pooled)
        assert merged.count == pooled.size
        for q in (50.0, 95.0, 99.0, 99.9):
            assert_within_bound(merged, pooled, q)


class TestState:
    def test_dict_round_trip(self):
        sk = QuantileSketch(compression=64)
        sk.observe_many(np.linspace(0, 1, 777))
        clone = QuantileSketch.from_dict(sk.as_dict())
        assert clone.as_dict() == sk.as_dict()
        assert clone.quantiles() == sk.quantiles()

    def test_empty_dict_round_trip(self):
        sk = QuantileSketch()
        doc = sk.as_dict()
        assert doc["min"] is None and doc["max"] is None
        clone = QuantileSketch.from_dict(doc)
        assert clone.count == 0
        assert clone.percentile(50) == 0.0

    def test_picklable(self):
        sk = QuantileSketch()
        sk.observe_many(np.arange(1000.0))
        clone = pickle.loads(pickle.dumps(sk))
        assert clone.as_dict() == sk.as_dict()

    def test_memory_bounded(self):
        sk = QuantileSketch()
        rng = np.random.default_rng(0)
        for _ in range(20):
            sk.observe_many(rng.normal(size=5000))
        sk._compress()
        # Centroid count stays O(compression) no matter how much went in.
        assert len(sk._means) <= 2 * DEFAULT_COMPRESSION

    def test_default_compression_error_bound(self):
        assert QuantileSketch().rank_error_bound == pytest.approx(
            3.0 / DEFAULT_COMPRESSION
        )
