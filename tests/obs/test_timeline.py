"""The telemetry timeline: ring bounds, queries, merging, serialization."""

import pytest

from repro.obs.schema import SchemaError, validate_timeline
from repro.obs.timeline import (
    DEFAULT_CAPACITY,
    TIMELINE_SCHEMA_ID,
    TimelineSample,
    TimelineStore,
)


def fill(store, n, op="dump", start_tick=1, **extra):
    for i in range(n):
        store.record(op, start_tick + i, latency_s=float(i), **extra)


class TestRecording:
    def test_defaults(self):
        store = TimelineStore()
        assert store.capacity == DEFAULT_CAPACITY
        assert store.enabled
        assert len(store) == 0
        assert store.latest_tick() == 0

    def test_record_returns_the_sample(self):
        store = TimelineStore()
        sample = store.record(
            "dump", 3, tenant="a", strategy="batched", backend="svc",
            epoch=2, latency_s=0.5, bytes_moved=1024,
        )
        assert sample.tick == 3
        assert sample.tenant == "a"
        assert sample.values == {"latency_s": 0.5, "bytes_moved": 1024.0}
        assert store.recorded == 1
        assert store.latest_tick() == 3

    def test_ring_evicts_oldest_and_counts_drops(self):
        store = TimelineStore(capacity=4)
        fill(store, 10)
        assert len(store) == 4
        assert store.recorded == 10
        assert store.dropped == 6
        # Oldest-first, and only the newest four survive.
        assert [s.tick for s in store.samples()] == [7, 8, 9, 10]

    def test_capacity_zero_disables_recording(self):
        store = TimelineStore(capacity=0)
        assert not store.enabled
        assert store.record("dump", 1, latency_s=1.0) is None
        assert len(store) == 0
        assert store.recorded == 0
        assert store.sketches == {}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TimelineStore(capacity=-1)


class TestQueries:
    def test_samples_filter_by_op_tenant_tick(self):
        store = TimelineStore()
        store.record("dump", 1, tenant="a", latency_s=1.0)
        store.record("restore", 2, tenant="a", latency_s=2.0)
        store.record("dump", 3, tenant="b", latency_s=3.0)
        assert len(store.samples(op="dump")) == 2
        assert len(store.samples(tenant="a")) == 2
        assert [s.tick for s in store.samples(since_tick=2)] == [2, 3]
        assert len(store.samples(op="dump", tenant="b")) == 1

    def test_window_is_half_open_on_the_left(self):
        store = TimelineStore()
        fill(store, 6)  # ticks 1..6, latency 0..5
        # (start, end] — tick 2 excluded, ticks 3..5 included.
        assert store.window("dump", "latency_s", 2, 5) == [2.0, 3.0, 4.0]
        assert store.window("dump", "missing_field", 0, 10) == []
        assert store.window("restore", "latency_s", 0, 10) == []

    def test_sketches_track_per_op_field(self):
        store = TimelineStore()
        fill(store, 10)
        store.record("restore", 11, locality=0.75)
        sk = store.sketch("dump", "latency_s")
        assert sk.count == 10
        assert store.sketch("restore", "locality").count == 1
        assert store.sketch("dump", "locality") is None

    def test_sketches_survive_ring_eviction(self):
        store = TimelineStore(capacity=2)
        fill(store, 50)
        assert len(store) == 2
        # The whole-run sketch saw everything the ring forgot.
        assert store.sketch("dump", "latency_s").count == 50

    def test_op_counts_sorted(self):
        store = TimelineStore()
        store.record("restore", 1, latency_s=1.0)
        store.record("dump", 2, latency_s=1.0)
        store.record("dump", 3, latency_s=1.0)
        assert store.op_counts() == {"dump": 2, "restore": 1}
        assert list(store.op_counts()) == ["dump", "restore"]


class TestMerge:
    def test_samples_interleave_by_tick(self):
        a, b = TimelineStore(), TimelineStore()
        a.record("dump", 1, latency_s=1.0)
        a.record("dump", 5, latency_s=5.0)
        b.record("restore", 3, latency_s=3.0)
        a.merge(b)
        assert [(s.tick, s.op) for s in a.samples()] == [
            (1, "dump"), (3, "restore"), (5, "dump"),
        ]
        assert a.recorded == 3

    def test_merge_combines_sketches(self):
        a, b = TimelineStore(), TimelineStore()
        fill(a, 5)
        fill(b, 5, start_tick=6)
        a.merge(b)
        assert a.sketch("dump", "latency_s").count == 10

    def test_merge_overflow_counts_as_dropped(self):
        a = TimelineStore(capacity=3)
        b = TimelineStore()
        fill(a, 3)
        fill(b, 3, start_tick=4)
        a.merge(b)
        assert len(a) == 3
        assert a.dropped == 3

    def test_merge_into_disabled_is_noop(self):
        a = TimelineStore(capacity=0)
        b = TimelineStore()
        fill(b, 3)
        a.merge(b)
        assert len(a) == 0


class TestSerialization:
    def test_round_trip(self):
        store = TimelineStore(capacity=8)
        fill(store, 12, tenant="a", strategy="batched", backend="svc")
        doc = store.as_dict()
        assert doc["schema"] == TIMELINE_SCHEMA_ID
        validate_timeline(doc)
        clone = TimelineStore.from_dict(doc)
        assert clone.as_dict() == doc
        assert clone.sketch("dump", "latency_s").count == 12

    def test_sample_round_trip(self):
        sample = TimelineSample(
            tick=4, op="gc", tenant="t", strategy="s", backend="b",
            epoch=1, values={"freed": 2.0},
        )
        assert TimelineSample.from_dict(sample.as_dict()) == sample

    def test_from_dict_validates(self):
        with pytest.raises(SchemaError):
            TimelineStore.from_dict({"schema": "bogus"})

    def test_validate_rejects_decreasing_ticks(self):
        store = TimelineStore()
        fill(store, 3)
        doc = store.as_dict()
        doc["samples"][0]["tick"] = 99
        with pytest.raises(SchemaError, match="non-decreasing"):
            validate_timeline(doc)
