"""Critical-path breakdowns, rank skew and A/B diffs over run snapshots."""

import math

import pytest

from repro.obs.analyzer import (
    pipeline_stage_overlap,
    critical_path_seconds,
    diff_runs,
    format_report,
    load_run,
    phase_breakdown,
    rank_skew,
)
from repro.obs.export import write_run
from repro.obs.schema import RUN_SCHEMA_ID, SchemaError


def run_doc(per_rank_phases, meta=None):
    """Build a run snapshot from ``{rank: {phase: seconds}}``."""
    empty = {"counters": {}, "gauges": {}, "histograms": {}}
    ranks = []
    for rank in sorted(per_rank_phases):
        phases = {
            phase: {
                "seconds": seconds,
                "sent_bytes": int(seconds * 1000),
                "chunks": 2,
            }
            for phase, seconds in per_rank_phases[rank].items()
        }
        ranks.append(
            {
                "rank": rank,
                "level": "phase",
                "phases": phases,
                "spans": [],
                "metrics": dict(empty),
            }
        )
    return {
        "schema": RUN_SCHEMA_ID,
        "host": "testhost",
        "cores": 1,
        "meta": dict(meta or {}),
        "ranks": ranks,
        "metrics": dict(empty),
    }


class TestLoadRun:
    def test_round_trip(self, tmp_path):
        doc = run_doc({0: {"hash": 1.0}})
        path = write_run(tmp_path / "r.json", doc)
        assert load_run(path) == doc

    def test_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SchemaError):
            load_run(path)


class TestPhaseBreakdown:
    def run(self):
        return run_doc(
            {
                0: {"exchange": 3.0, "hash": 1.0},
                1: {"exchange": 1.0, "hash": 1.0},
            }
        )

    def test_sorted_by_max_seconds(self):
        rows = phase_breakdown(self.run())
        assert [r["phase"] for r in rows] == ["exchange", "hash"]

    def test_straggler_and_stats(self):
        row = phase_breakdown(self.run())[0]
        assert row["straggler"] == 0
        assert row["max_s"] == 3.0
        assert row["mean_s"] == 2.0
        assert row["total_s"] == 4.0
        assert row["sent_bytes"] == 4000
        assert row["chunks"] == 4

    def test_critical_share_sums_to_one(self):
        rows = phase_breakdown(self.run())
        assert math.isclose(sum(r["critical_share"] for r in rows), 1.0)

    def test_critical_path_is_sum_of_stragglers(self):
        assert critical_path_seconds(self.run()) == 4.0  # 3.0 + 1.0


class TestRankSkew:
    def test_flags_straggler_above_threshold(self):
        run = run_doc({0: {"exchange": 3.0}, 1: {"exchange": 1.0}})
        suspects = rank_skew(run, threshold=1.5)
        assert len(suspects) == 1
        s = suspects[0]
        assert s["phase"] == "exchange"
        assert s["straggler"] == 0
        assert s["skew"] == 1.5
        assert s["mean_s"] == 2.0

    def test_threshold_excludes_balanced(self):
        run = run_doc({0: {"exchange": 3.0}, 1: {"exchange": 1.0}})
        assert rank_skew(run, threshold=2.0) == []

    def test_all_zero_phase_skipped(self):
        run = run_doc({0: {"idle": 0.0}, 1: {"idle": 0.0}})
        assert rank_skew(run, threshold=1.0) == []

    def test_sorted_by_skew_descending(self):
        run = run_doc(
            {
                0: {"a": 4.0, "b": 3.0},
                1: {"a": 1.0, "b": 2.0},
            }
        )
        suspects = rank_skew(run, threshold=1.0)
        assert [s["phase"] for s in suspects] == ["a", "b"]


class TestDiffRuns:
    def test_per_phase_ratio_and_missing_phases(self):
        a = run_doc({0: {"x": 2.0, "only_a": 1.0}})
        b = run_doc({0: {"x": 1.0, "only_b": 0.5}})
        rows = {row["phase"]: row for row in diff_runs(a, b)}
        assert rows["x"]["ratio"] == 2.0
        assert rows["x"]["delta_s"] == 1.0
        assert rows["only_a"]["ratio"] == math.inf
        assert rows["only_b"]["a_s"] == 0.0
        assert rows["only_b"]["ratio"] == 0.0

    def test_both_zero_ratio_is_one(self):
        a = run_doc({0: {"idle": 0.0}})
        b = run_doc({0: {"idle": 0.0}})
        (row,) = diff_runs(a, b)
        assert row["ratio"] == 1.0

    def test_sorted_by_absolute_delta(self):
        a = run_doc({0: {"big": 5.0, "small": 1.1}})
        b = run_doc({0: {"big": 1.0, "small": 1.0}})
        rows = diff_runs(a, b)
        assert [row["phase"] for row in rows] == ["big", "small"]


class TestFormatReport:
    def run(self):
        return run_doc(
            {
                0: {"exchange": 3.0, "hash": 1.0},
                1: {"exchange": 1.0, "hash": 1.0},
            },
            meta={"backend": "process"},
        )

    def test_contains_phase_totals_and_skew(self):
        text = format_report(self.run())
        assert "critical path" in text
        assert "exchange" in text and "hash" in text
        assert "backend=process" in text
        assert "rank skew" in text
        assert "rank 0" in text

    def test_balanced_run_reports_no_skew(self):
        run = run_doc({0: {"hash": 1.0}, 1: {"hash": 1.0}})
        assert "balanced run" in format_report(run)

    def test_top_limits_rows(self):
        text = format_report(self.run(), top=1)
        table = [l for l in text.splitlines() if l.startswith(("exchange", "hash"))]
        assert len(table) >= 1
        assert not any(l.startswith("hash") for l in table)

    def test_ab_diff_section(self):
        a, b = self.run(), run_doc({0: {"exchange": 1.0}, 1: {"exchange": 1.0}})
        text = format_report(a, against=b)
        assert "A/B diff vs baseline" in text
        assert "ratio" in text


class TestPipelineStageOverlap:
    def span(self, stage, start, end):
        return {
            "name": "pipeline", "rank": 0, "start": start, "end": end,
            "parent": -1, "attrs": {"stage": stage},
        }

    def doc_with_spans(self, per_rank_spans):
        doc = run_doc({rank: {"hash": 0.1} for rank in per_rank_spans})
        for entry in doc["ranks"]:
            entry["spans"] = per_rank_spans[entry["rank"]]
        return doc

    def test_no_pipeline_spans_yields_zero(self):
        result = pipeline_stage_overlap(run_doc({0: {"hash": 1.0}}))
        assert result["overlap_ratio"] == 0.0
        assert result["stages"] == {}
        assert result["active_s"] == 0.0

    def test_disjoint_stages_do_not_overlap(self):
        doc = self.doc_with_spans({
            0: [self.span("hash", 0.0, 1.0), self.span("write", 2.0, 3.0)],
        })
        result = pipeline_stage_overlap(doc)
        assert result["active_s"] == pytest.approx(2.0)
        assert result["overlap_s"] == 0.0
        assert result["overlap_ratio"] == 0.0

    def test_cross_rank_distinct_stage_overlap_counts(self):
        """Rank 0 writing while rank 1 hashes is pipeline overlap."""
        doc = self.doc_with_spans({
            0: [self.span("write", 0.0, 2.0)],
            1: [self.span("hash", 1.0, 3.0)],
        })
        result = pipeline_stage_overlap(doc)
        assert result["active_s"] == pytest.approx(3.0)
        assert result["overlap_s"] == pytest.approx(1.0)
        assert result["overlap_ratio"] == pytest.approx(1.0 / 3.0)
        assert result["stages"] == {
            "write": pytest.approx(2.0), "hash": pytest.approx(2.0),
        }

    def test_same_stage_concurrency_is_not_overlap(self):
        """Two ranks hashing simultaneously is parallelism, not pipelining
        — only distinct concurrent stages prove the phases interleave."""
        doc = self.doc_with_spans({
            0: [self.span("hash", 0.0, 2.0)],
            1: [self.span("hash", 0.0, 2.0)],
        })
        result = pipeline_stage_overlap(doc)
        assert result["overlap_s"] == 0.0
        assert result["active_s"] == pytest.approx(2.0)

    def test_gauges_collected(self):
        doc = self.doc_with_spans({0: [self.span("hash", 0.0, 1.0)]})
        doc["ranks"][0]["metrics"] = {
            "counters": {}, "histograms": {},
            "gauges": {"pipeline_overlap_ratio": 0.42},
        }
        result = pipeline_stage_overlap(doc)
        assert result["rank_write_prefence_ratio"] == {0: 0.42}

    def test_non_pipeline_spans_ignored(self):
        doc = self.doc_with_spans({
            0: [
                self.span("hash", 0.0, 1.0),
                {"name": "shuffle", "rank": 0, "start": 0.0, "end": 5.0,
                 "parent": -1, "attrs": {}},
            ],
        })
        result = pipeline_stage_overlap(doc)
        assert result["active_s"] == pytest.approx(1.0)
