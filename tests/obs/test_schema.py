"""Structural validation of run snapshots and unified benchmark documents."""

import json

import pytest

from repro.obs.schema import (
    BENCH_SCHEMA_ID,
    RUN_SCHEMA_ID,
    SchemaError,
    bench_document,
    validate_bench,
    validate_run,
    write_bench_entry,
)


def minimal_run():
    return {
        "schema": RUN_SCHEMA_ID,
        "host": "testhost",
        "cores": 2,
        "meta": {},
        "ranks": [
            {
                "rank": 0,
                "level": "span",
                "phases": {"hash": {"sent_bytes": 1, "seconds": 0.5}},
                "spans": [
                    {"name": "dump", "rank": 0, "start": 1.0, "end": 2.0,
                     "parent": -1, "attrs": {}},
                    {"name": "hash", "rank": 0, "start": 1.1, "end": 1.9,
                     "parent": 0, "attrs": {"chunks": 4}},
                ],
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            }
        ],
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


class TestValidateRun:
    def test_accepts_minimal(self):
        assert validate_run(minimal_run()) is not None

    def test_rejects_wrong_schema_id(self):
        doc = minimal_run()
        doc["schema"] = "repro.obs/run/v0"
        with pytest.raises(SchemaError, match="schema"):
            validate_run(doc)

    def test_rejects_missing_host(self):
        doc = minimal_run()
        del doc["host"]
        with pytest.raises(SchemaError, match="host"):
            validate_run(doc)

    def test_rejects_empty_ranks(self):
        doc = minimal_run()
        doc["ranks"] = []
        with pytest.raises(SchemaError, match="ranks"):
            validate_run(doc)

    def test_rejects_duplicate_ranks(self):
        doc = minimal_run()
        doc["ranks"].append(dict(doc["ranks"][0]))
        with pytest.raises(SchemaError, match="duplicate rank"):
            validate_run(doc)

    def test_rejects_span_end_before_start(self):
        doc = minimal_run()
        doc["ranks"][0]["spans"][0]["end"] = 0.5
        with pytest.raises(SchemaError, match="before start"):
            validate_run(doc)

    def test_rejects_forward_parent_reference(self):
        doc = minimal_run()
        doc["ranks"][0]["spans"][0]["parent"] = 1
        with pytest.raises(SchemaError, match="earlier span"):
            validate_run(doc)

    def test_rejects_non_numeric_phase_counter(self):
        doc = minimal_run()
        doc["ranks"][0]["phases"]["hash"]["sent_bytes"] = "many"
        with pytest.raises(SchemaError, match="number"):
            validate_run(doc)

    def test_rejects_non_mapping(self):
        with pytest.raises(SchemaError):
            validate_run([])


class TestValidateBench:
    def minimal(self):
        return bench_document(
            "h", 4, False,
            {"cold": {"timings": {"legacy": 2.0, "batched": 1.0},
                      "speedup": 2.0}},
        )

    def test_accepts_minimal(self):
        assert validate_bench(self.minimal()) is not None

    def test_speedup_null_allowed(self):
        doc = self.minimal()
        doc["benchmarks"]["cold"]["speedup"] = None
        validate_bench(doc)

    def test_rejects_missing_timings(self):
        doc = self.minimal()
        del doc["benchmarks"]["cold"]["timings"]
        with pytest.raises(SchemaError, match="timings"):
            validate_bench(doc)

    def test_rejects_empty_timings(self):
        doc = self.minimal()
        doc["benchmarks"]["cold"]["timings"] = {}
        with pytest.raises(SchemaError, match="at least one timing"):
            validate_bench(doc)

    def test_rejects_negative_timing(self):
        doc = self.minimal()
        doc["benchmarks"]["cold"]["timings"]["legacy"] = -1
        with pytest.raises(SchemaError, match="seconds >= 0"):
            validate_bench(doc)

    def test_rejects_missing_speedup(self):
        doc = self.minimal()
        del doc["benchmarks"]["cold"]["speedup"]
        with pytest.raises(SchemaError, match="speedup"):
            validate_bench(doc)

    def test_rejects_bad_cores(self):
        doc = self.minimal()
        doc["cores"] = 0
        with pytest.raises(SchemaError, match="cores"):
            validate_bench(doc)

    def test_extra_keys_allowed(self):
        doc = self.minimal()
        doc["benchmarks"]["cold"]["chunks_per_rank"] = 4096
        validate_bench(doc)


class TestWriteBenchEntry:
    def test_creates_and_merges(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_bench_entry(path, "a", {"timings": {"t": 1.0}, "speedup": 1.5})
        write_bench_entry(path, "b", {"timings": {"t": 2.0}, "speedup": None})
        doc = json.loads(path.read_text())
        assert doc["schema"] == BENCH_SCHEMA_ID
        assert set(doc["benchmarks"]) == {"a", "b"}
        validate_bench(doc)

    def test_migrates_legacy_flat_document(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"old_entry": {"seconds": 1}, "smoke": True}))
        doc = write_bench_entry(
            path, "a", {"timings": {"t": 1.0}, "speedup": 1.0}
        )
        assert "old_entry" not in doc["benchmarks"]
        validate_bench(json.loads(path.read_text()))

    def test_malformed_payload_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_bench_entry(path, "a", {"timings": {"t": 1.0}, "speedup": 1.0})
        before = path.read_text()
        with pytest.raises(SchemaError):
            write_bench_entry(path, "bad", {"timings": {}})
        assert path.read_text() == before
