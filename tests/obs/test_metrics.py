"""Counters, gauges, histograms and their cross-rank aggregation."""

import math
import pickle

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_registries,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        assert g.value is None
        g.set(3)
        g.set(7)
        assert g.value == 7


class TestHistogram:
    def test_bucketing(self):
        h = Histogram((10.0, 100.0))
        h.observe(5)
        h.observe(10)  # boundary lands in its own bucket (le semantics)
        h.observe(50)
        h.observe(5000)  # overflow slot
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == 5065
        assert h.min == 5 and h.max == 5000

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((10.0, 5.0))
        with pytest.raises(ValueError):
            Histogram((10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_mean(self):
        h = Histogram((1.0,))
        assert h.mean == 0.0
        h.observe(2, n=4)
        assert h.mean == 2.0

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram(SIZE_BUCKETS)
        h.observe(256, n=100)
        assert h.percentile(50) == 256
        assert h.percentile(99) == 256

    def test_percentile_interpolates(self):
        h = Histogram((10.0, 20.0))
        h.observe(5, n=50)
        h.observe(15, n=50)
        p50 = h.percentile(50)
        assert 5 <= p50 <= 10
        assert h.percentile(0) >= h.min
        assert h.percentile(100) == h.max

    def test_percentile_bounds_checked(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_merge(self):
        a, b = Histogram((10.0,)), Histogram((10.0,))
        a.observe(1)
        b.observe(100, n=2)
        a.merge(b)
        assert a.counts == [1, 2]
        assert a.count == 3
        assert a.min == 1 and a.max == 100

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            Histogram((10.0,)).merge(Histogram((20.0,)))

    def test_as_dict_empty_min_max_none(self):
        d = Histogram((1.0,)).as_dict()
        assert d["min"] is None and d["max"] is None

    def test_observe_many_matches_loop(self):
        values = [5, 10, 50, 5000, 0.5, 256]
        looped, batched = Histogram((10.0, 100.0)), Histogram((10.0, 100.0))
        for v in values:
            looped.observe(v)
        batched.observe_many(iter(values))  # any iterable, e.g. dict.values()
        assert batched.counts == looped.counts
        assert batched.count == looped.count
        assert batched.sum == looped.sum
        assert batched.min == looped.min and batched.max == looped.max

    def test_observe_many_empty(self):
        h = Histogram((1.0,))
        h.observe_many([])
        assert h.count == 0

    def test_observe_ignores_nonpositive_n(self):
        h = Histogram((1.0,))
        h.observe(5, n=0)
        assert h.count == 0
        assert h.min == math.inf


class TestRegistry:
    def test_named_lazily_created_and_cached(self):
        reg = MetricsRegistry()
        assert not reg
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg

    def test_picklable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h", LATENCY_BUCKETS).observe(1e-4)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counters["c"].value == 3
        assert clone.histograms["h"].count == 1

    def test_as_dict_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.as_dict()["counters"]) == ["a", "b"]


class TestAggregate:
    def test_counters_sum_with_spread(self):
        regs = []
        for value in (1, 3):
            r = MetricsRegistry()
            r.counter("puts").inc(value)
            regs.append(r)
        agg = aggregate_registries(regs)
        assert agg["counters"]["puts"]["total"] == 4
        assert agg["counters"]["puts"]["min"] == 1
        assert agg["counters"]["puts"]["max"] == 3
        assert agg["counters"]["puts"]["mean"] == 2

    def test_gauges_distribution_skips_unset(self):
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        a.gauge("slots").set(10)
        b.gauge("slots").set(30)
        c.gauge("slots")  # never set -> excluded
        agg = aggregate_registries([a, b, c])
        assert agg["gauges"]["slots"]["mean"] == 20
        assert agg["gauges"]["slots"]["p50"] == 20

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("sz").observe(100, n=2)
        b.histogram("sz").observe(1 << 30)  # overflow
        agg = aggregate_registries([a, b])
        hist = agg["histograms"]["sz"]
        assert hist["count"] == 3
        assert hist["buckets"][-1] == ["+Inf", 1]
        assert hist["min"] == 100 and hist["max"] == 1 << 30

    def test_none_registries_skipped(self):
        assert aggregate_registries([None]) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
