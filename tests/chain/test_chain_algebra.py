"""Property suite for the chain algebra.

The laws that make incremental chains safe to operate:

* **compaction identity** — k deltas compacted into a synthetic full
  resolve to exactly the fingerprints a from-scratch full dump of the same
  state produces, and restore byte-identically;
* **GC prefix invariance** — pruning any prefix (or any subset) of
  ancestors never changes a surviving epoch's restored bytes;
* **time-travel soundness at depth** — on chains of depth >= 8, every live
  epoch restores byte-identical to the in-memory oracle on the thread AND
  process backends, including after interleaved GC and compaction.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.mutating import MutatingWorkload
from repro.chain import ChainManager
from repro.core.config import DumpConfig
from repro.storage.local_store import Cluster

CHUNK = 512
SEGMENTS = (CHUNK * 5, CHUNK * 2 + 100, 200)


def build_chain(seed, depth, dirty_frac, n=2, backend=None):
    cluster = Cluster(n)
    config = DumpConfig(replication_factor=2, chunk_size=CHUNK)
    workload = MutatingWorkload(
        seed=seed, segment_lengths=SEGMENTS, chunk_size=CHUNK,
        dirty_frac=dirty_frac,
    )
    manager = ChainManager(cluster, config, n, backend=backend)
    manager.chain_dump(workload, kind="full")
    for _ in range(depth):
        workload.advance()
        manager.chain_dump(workload)
    return manager, workload


def assert_epoch_matches_oracle(manager, workload, epoch, n):
    for rank in range(n):
        dataset, _ = manager.restore_epoch(rank, epoch)
        want = workload.at_epoch(epoch).build_dataset(rank, n).to_bytes()
        assert dataset.to_bytes() == want, (epoch, rank)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    depth=st.integers(min_value=1, max_value=6),
    dirty_frac=st.sampled_from([0.05, 0.2, 0.5]),
)
def test_deltas_plus_compact_equals_one_full(seed, depth, dirty_frac):
    """k deltas + compact == one full dump of the same state: identical
    resolved fingerprints, byte-identical restores."""
    n = 2
    manager, workload = build_chain(seed, depth, dirty_frac, n=n)
    manager.compact(depth)

    fresh_cluster = Cluster(n)
    fresh = ChainManager(
        fresh_cluster, DumpConfig(replication_factor=2, chunk_size=CHUNK), n
    )
    fresh.chain_dump(workload.at_epoch(depth), kind="full")

    for rank in range(n):
        assert (
            manager.resolved_fps(depth, rank) == fresh.nodes[0].fps[rank]
        ), rank
        compacted, _ = manager.restore_epoch(rank, depth)
        scratch, _ = fresh.restore_epoch(rank, 0)
        assert compacted.to_bytes() == scratch.to_bytes()


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    depth=st.integers(min_value=2, max_value=6),
    data=st.data(),
)
def test_gc_never_changes_surviving_restores(seed, depth, data):
    """Pruning any subset of epochs (tip excluded) leaves every survivor's
    restore byte-identical to the oracle."""
    n = 2
    manager, workload = build_chain(seed, depth, dirty_frac=0.3, n=n)
    victims = data.draw(st.lists(
        st.integers(min_value=0, max_value=depth - 1),
        unique=True, max_size=depth,
    ))
    for epoch in victims:
        manager.prune(epoch)
    survivors = manager.live_epochs()
    assert depth in survivors
    for epoch in survivors:
        assert_epoch_matches_oracle(manager, workload, epoch, n)
    # refcount conservation: stored chunks == union of survivors' resolved
    stored = set()
    for node in manager.cluster.nodes:
        stored.update(node.chunks.fingerprints())
    referenced = set()
    for epoch in survivors:
        referenced |= manager.resolved_distinct(epoch)
    assert stored == referenced
    assert len(manager.index) == len(referenced)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    data=st.data(),
)
def test_depth8_time_travel_with_gc_and_compaction_thread(seed, data):
    _depth8_time_travel(seed, data, backend="thread")


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    data=st.data(),
)
def test_depth8_time_travel_with_gc_and_compaction_process(seed, data):
    _depth8_time_travel(seed, data, backend="process")


def _depth8_time_travel(seed, data, backend):
    """The acceptance property: depth >= 8 chains restore every live epoch
    byte-identically on this backend, before and after GC + compaction."""
    n = 2
    depth = data.draw(st.integers(min_value=8, max_value=9), label="depth")
    manager, workload = build_chain(
        seed, depth, dirty_frac=0.15, n=n, backend=backend
    )
    assert manager.depth_of(depth) == depth + 1

    for epoch in range(depth + 1):
        assert_epoch_matches_oracle(manager, workload, epoch, n)

    victims = data.draw(st.lists(
        st.integers(min_value=0, max_value=depth - 1),
        unique=True, min_size=1, max_size=4,
    ), label="pruned")
    for epoch in victims:
        manager.prune(epoch)
    for epoch in manager.live_epochs():
        assert_epoch_matches_oracle(manager, workload, epoch, n)

    compact_at = data.draw(
        st.sampled_from(manager.live_epochs()), label="compacted"
    )
    manager.compact(compact_at)
    for epoch in manager.live_epochs():
        assert_epoch_matches_oracle(manager, workload, epoch, n)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backends_produce_identical_chains(backend):
    """Differential anchor: both backends yield the same chain nodes, the
    same cluster fingerprints and the same blob."""
    manager, _ = build_chain(seed=424242, depth=3, dirty_frac=0.2,
                             backend=backend)
    blob = manager.to_blob()
    reference, _ = build_chain(seed=424242, depth=3, dirty_frac=0.2,
                               backend="thread")
    assert blob == reference.to_blob()
    stored = {
        node.node_id: sorted(node.chunks.fingerprints())
        for node in manager.cluster.nodes
    }
    ref_stored = {
        node.node_id: sorted(node.chunks.fingerprints())
        for node in reference.cluster.nodes
    }
    assert stored == ref_stored
