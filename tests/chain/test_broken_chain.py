"""Regression suite: a chain delta is never silently restorable.

Before the chain layer, every consumer of a dump id — ``restore_dataset``,
the collective ``load_input``, the ftrt :class:`CheckpointRuntime` restart
paths — assumed any manifest describes a complete dataset.  A chain delta
holds one epoch's dirty chunks only: reassembling it as a full dataset is
silent corruption (a short dataset of concatenated dirty chunks).  These
tests pin the fix — every such path surfaces a typed
:class:`~repro.chain.errors.ChainBrokenError` instead — plus the
chain-level failure mode: a delta whose parent chunks were lost reports
the ancestor epoch that wrote them.
"""

import pytest

from repro.apps.mutating import MutatingWorkload
from repro.chain import ChainBrokenError, ChainError, ChainManager
from repro.core.collective_restore import load_input
from repro.core.config import DumpConfig
from repro.core.restore import restore_dataset
from repro.core.runner import run_collective
from repro.ftrt.runtime import CheckpointRuntime
from repro.storage.local_store import Cluster

N = 2
CHUNK = 1024


def chained_cluster(depth=2, seed=9):
    cluster = Cluster(N)
    config = DumpConfig(replication_factor=2, chunk_size=CHUNK)
    workload = MutatingWorkload(seed=seed, chunk_size=CHUNK, dirty_frac=0.2)
    manager = ChainManager(cluster, config, N)
    manager.chain_dump(workload, kind="full")
    for _ in range(depth):
        workload.advance()
        manager.chain_dump(workload)
    return cluster, config, manager, workload


def delta_dump_id(manager):
    node = manager.tip()
    assert node.kind == "delta"
    return node.dump_id


class TestRestorePathsRejectDeltas:
    def test_restore_dataset_raises_typed(self):
        cluster, config, manager, _ = chained_cluster()
        with pytest.raises(ChainBrokenError, match="chain delta"):
            restore_dataset(cluster, 0, delta_dump_id(manager))

    def test_restore_dataset_legacy_path_raises_too(self):
        cluster, config, manager, _ = chained_cluster()
        with pytest.raises(ChainBrokenError, match="chain delta"):
            restore_dataset(
                cluster, 0, delta_dump_id(manager), batched=False
            )

    @pytest.mark.parametrize("batched", [True, False])
    def test_collective_load_input_aborts_typed(self, batched):
        cluster, config, manager, _ = chained_cluster()
        config = config.with_(batched=batched)
        dump_id = delta_dump_id(manager)

        def rank_main(comm):
            with pytest.raises(ChainBrokenError, match="chain delta"):
                load_input(comm, cluster, config, dump_id)
            return "aborted"

        results, _ = run_collective(N, rank_main, cluster=cluster)
        assert results == ["aborted"] * N

    def test_full_dumps_still_restore(self):
        cluster, config, manager, workload = chained_cluster()
        full_id = manager.nodes[0].dump_id
        dataset, _ = restore_dataset(cluster, 0, full_id)
        want = workload.at_epoch(0).build_dataset(0, N).to_bytes()
        assert dataset.to_bytes() == want


class TestFtrtRuntimeSeam:
    def test_restart_on_chain_delta_is_typed_not_garbage(self):
        """An ftrt runtime pointed (via shared cluster) at a chain delta's
        dump id must raise, not hand the app a dirty-chunk concatenation."""
        cluster, config, manager, _ = chained_cluster()
        dump_id = delta_dump_id(manager)

        def rank_main(comm):
            runtime = CheckpointRuntime(comm, cluster, config, interval=1)
            runtime.memory.register("state", bytearray(CHUNK))
            with pytest.raises(ChainBrokenError, match="chain delta"):
                runtime.restart(dump_id)
            return runtime.stats.restarts

        results, _ = run_collective(N, rank_main, cluster=cluster)
        assert results == [0] * N  # the failed restart was not recorded

    def test_restart_collective_on_chain_delta_is_typed(self):
        cluster, config, manager, _ = chained_cluster()
        dump_id = delta_dump_id(manager)

        def rank_main(comm):
            runtime = CheckpointRuntime(comm, cluster, config, interval=1)
            runtime.memory.register("state", bytearray(CHUNK))
            with pytest.raises(ChainBrokenError):
                runtime.restart_collective(dump_id)
            return "typed"

        results, _ = run_collective(N, rank_main, cluster=cluster)
        assert results == ["typed"] * N

    def test_ftrt_checkpoints_interleave_with_chains_safely(self):
        """ftrt checkpoints sharing a cluster with a chain keep restoring:
        the chain's dump ids never collide after set_next_dump_id."""
        cluster, config, manager, _ = chained_cluster()

        def rank_main(comm):
            runtime = CheckpointRuntime(comm, cluster, config, interval=1)
            runtime._next_dump_id = 100  # disjoint id space
            runtime.memory.register("state", bytearray(b"x" * CHUNK))
            runtime.maybe_checkpoint(1)
            return runtime.restart()

        results, _ = run_collective(N, rank_main, cluster=cluster)
        assert results == [100] * N
        manager.set_next_dump_id(101)
        assert manager._next_dump_id == 101


class TestLostParentChunks:
    def test_broken_error_names_writer_epoch_and_missing(self):
        cluster, config, manager, _ = chained_cluster(depth=3)
        # lose a chunk the BASE full wrote, still inherited at the tip
        tip_fps = set(manager.resolved_fps(3, 0))
        base_fps = [
            fp for fp in manager.nodes[0].fps[0]
            if fp in tip_fps
            and manager._writer_epoch(3, fp) == 0
        ]
        assert base_fps
        victim = base_fps[0]
        for node in cluster.nodes:
            node.chunks.discard(victim)
        with pytest.raises(ChainBrokenError) as excinfo:
            manager.restore_epoch(0, 3)
        err = excinfo.value
        assert err.epoch == 3
        assert err.writer_epoch == 0
        assert victim in err.missing
        assert isinstance(err, ChainError)

    def test_verify_epoch_degrades_before_restore_garbage(self):
        cluster, config, manager, _ = chained_cluster(depth=2)
        victim = manager.resolved_fps(2, 1)[3]
        for node in cluster.nodes:
            node.chunks.discard(victim)
        assert manager.verify_epoch(1, 2) is not None

    def test_replicated_loss_within_k_is_transparent(self):
        """Losing one replica of a parent chunk is not a broken chain."""
        cluster, config, manager, workload = chained_cluster(depth=2)
        victim = manager.resolved_fps(2, 0)[0]
        holders = cluster.locate(victim)
        cluster.nodes[holders[0]].chunks.discard(victim)
        dataset, _ = manager.restore_epoch(0, 2)
        want = workload.at_epoch(2).build_dataset(0, N).to_bytes()
        assert dataset.to_bytes() == want
