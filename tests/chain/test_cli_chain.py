"""The ``repro-eval chain`` subcommand and the fuzz ``--chain`` filter."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.smoke


def run_cli(argv):
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code


class TestChainCommand:
    def test_chain_run_verifies_every_epoch(self, capsys):
        assert run_cli([
            "chain", "--n", "3", "--epochs", "4",
            "--chunks-per-rank", "8", "--chunk-size", "64",
        ]) == 0
        text = capsys.readouterr().out
        # 4 epochs x 3 ranks, every restore checked against the oracle
        assert "12/12 epoch-rank restores byte-identical" in text
        assert "delta" in text
        assert "% saved" in text

    def test_chain_prune_and_compact_print_outcomes(self, capsys):
        assert run_cli([
            "chain", "--n", "3", "--epochs", "5", "--prune", "1",
            "--compact", "--chunks-per-rank", "8", "--chunk-size", "64",
        ]) == 0
        text = capsys.readouterr().out
        assert "prune epoch 0" in text
        assert "compact epoch 4" in text
        assert "chain depth now 1" in text

    def test_full_every_resets_chain_depth(self, capsys):
        assert run_cli([
            "chain", "--n", "3", "--epochs", "6", "--full-every", "3",
            "--chunks-per-rank", "8", "--chunk-size", "64",
        ]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.strip().startswith("3")
        ]
        assert any("full" in line for line in lines)


class TestFuzzChainFilter:
    def test_chain_filter_selects_only_chain_scenarios(self, capsys):
        from repro.dst import generate_scenario

        assert run_cli(["fuzz", "--seed", "0", "--runs", "2", "--chain"]) == 0
        text = capsys.readouterr().out
        ran = [
            int(line.split()[1].rstrip(":"))
            for line in text.splitlines() if line.startswith("seed ")
        ]
        assert len(ran) == 2
        for seed in ran:
            assert generate_scenario(seed).chain

    def test_chain_filter_requires_seed_source(self, capsys):
        assert run_cli(["fuzz", "--chain"]) == 2
