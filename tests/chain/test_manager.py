"""Unit suite for :class:`repro.chain.ChainManager`.

The algebraic/property layer lives in ``test_chain_algebra.py``; here every
manager operation is exercised directly — dump kinds and promotion, epoch
resolution, time-travel restore, prune/pin/sweep, compaction, locality
rewriting, persistence and the error surface.
"""

import pytest

from repro.apps.mutating import MutatingWorkload
from repro.chain import (
    ChainBrokenError,
    ChainManager,
    ChainStateError,
    chunk_slices,
)
from repro.core.config import DumpConfig
from repro.simmpi.trace import Trace
from repro.storage.local_store import Cluster
from repro.svc.index import GlobalDedupIndex

N = 3
CHUNK = 1024


def make_chain(n=N, depth=0, seed=11, dirty_frac=0.15, backend=None, **cfg):
    cluster = Cluster(n)
    config = DumpConfig(replication_factor=2, chunk_size=CHUNK, **cfg)
    workload = MutatingWorkload(seed=seed, chunk_size=CHUNK, dirty_frac=dirty_frac)
    manager = ChainManager(cluster, config, n, backend=backend)
    manager.chain_dump(workload, kind="full")
    for _ in range(depth):
        workload.advance()
        manager.chain_dump(workload)
    return manager, workload


def oracle(workload, epoch, rank, n=N):
    return workload.at_epoch(epoch).build_dataset(rank, n).to_bytes()


class TestChunkSlices:
    def test_tail_chunks_short(self):
        slices = chunk_slices([CHUNK * 2 + 100, 50], CHUNK)
        assert slices == [
            (0, 0, CHUNK), (0, CHUNK, CHUNK), (0, 2 * CHUNK, 100), (1, 0, 50)
        ]

    def test_empty_geometry(self):
        assert chunk_slices([], CHUNK) == []


class TestDump:
    def test_first_dump_promotes_to_full(self):
        cluster = Cluster(N)
        config = DumpConfig(replication_factor=2, chunk_size=CHUNK)
        manager = ChainManager(cluster, config, N)
        workload = MutatingWorkload(seed=1, chunk_size=CHUNK)
        result = manager.chain_dump(workload, kind="delta")
        assert result.kind == "full"
        assert result.promoted
        assert result.epoch == 0
        assert manager.nodes[0].parent_epoch is None

    def test_delta_dumps_only_dirty_chunks(self):
        manager, workload = make_chain(depth=0)
        workload.advance()
        result = manager.chain_dump(workload)
        assert result.kind == "delta" and not result.promoted
        n_chunks = len(chunk_slices(workload.segment_lengths, CHUNK))
        expected = len(workload._mutated_indices(0, 1)) * N
        assert result.changed_chunks == expected
        assert result.total_chunks == N * n_chunks
        assert result.delta_fraction < 1.0

    def test_geometry_change_promotes(self):
        manager, workload = make_chain(depth=1)
        grown = MutatingWorkload(
            seed=workload.seed,
            segment_lengths=[n + CHUNK for n in workload.segment_lengths],
            chunk_size=CHUNK,
        )
        grown.epoch = workload.epoch + 1
        result = manager.chain_dump(grown, kind="delta")
        assert result.kind == "full" and result.promoted

    def test_dump_ids_monotonic_and_recorded(self):
        manager, _ = make_chain(depth=3)
        dump_ids = [manager.nodes[e].dump_id for e in sorted(manager.nodes)]
        assert dump_ids == sorted(dump_ids)
        assert len(set(dump_ids)) == len(dump_ids)

    def test_new_unique_accounting_shrinks_for_deltas(self):
        manager, workload = make_chain(depth=0)
        full_new = manager.index.unique_bytes
        assert full_new > 0
        workload.advance()
        result = manager.chain_dump(workload)
        assert 0 < result.new_unique_bytes < full_new

    def test_bad_kind_rejected(self):
        manager, workload = make_chain()
        with pytest.raises(ChainStateError, match="kind"):
            manager.chain_dump(workload, kind="incremental")

    def test_parity_config_rejected(self):
        cluster = Cluster(N)
        config = DumpConfig(
            replication_factor=2, chunk_size=CHUNK, redundancy="parity"
        )
        with pytest.raises(ChainStateError, match="parity"):
            ChainManager(cluster, config, N)


class TestResolveAndRestore:
    def test_restore_every_epoch_every_rank(self):
        manager, workload = make_chain(depth=4)
        for epoch in range(5):
            for rank in range(N):
                dataset, report = manager.restore_epoch(rank, epoch)
                assert dataset.to_bytes() == oracle(workload, epoch, rank)
                assert report.total_bytes == dataset.nbytes

    def test_legacy_restore_matches_batched(self):
        manager, workload = make_chain(depth=2)
        for rank in range(N):
            batched, _ = manager.restore_epoch(rank, 2, batched=True)
            legacy, _ = manager.restore_epoch(rank, 2, batched=False)
            assert batched.to_bytes() == legacy.to_bytes()

    def test_resolved_fps_newest_wins(self):
        manager, workload = make_chain(depth=2)
        base = manager.nodes[0].fps[0]
        resolved = manager.resolved_fps(2, 0)
        assert len(resolved) == len(base)
        changed = dict(zip(
            manager.nodes[2].positions[0], manager.nodes[2].fps[0]
        ))
        for pos, fp in changed.items():
            assert resolved[pos] == fp

    def test_unknown_epoch(self):
        manager, _ = make_chain()
        with pytest.raises(ChainStateError, match="unknown"):
            manager.restore_epoch(0, 99)

    def test_depth_of(self):
        manager, _ = make_chain(depth=3)
        assert [manager.depth_of(e) for e in range(4)] == [1, 2, 3, 4]

    def test_verify_epoch_clean(self):
        manager, _ = make_chain(depth=2)
        assert manager.verify_epoch(0, 2) is None


class TestPrune:
    def test_prune_tip_without_descendants_drops_everything_it_owns(self):
        manager, workload = make_chain(depth=1)
        result = manager.prune(1)
        assert not result.pinned
        assert 1 not in manager.nodes  # swept: nothing depends on it
        # epoch 0 still restorable
        for rank in range(N):
            dataset, _ = manager.restore_epoch(rank, 0)
            assert dataset.to_bytes() == oracle(workload, 0, rank)

    def test_prune_base_pins_and_keeps_descendants_restorable(self):
        manager, workload = make_chain(depth=3)
        result = manager.prune(0)
        assert result.pinned
        assert manager.nodes[0].retired
        with pytest.raises(ChainStateError, match="pruned"):
            manager.restore_epoch(0, 0)
        for epoch in (1, 2, 3):
            for rank in range(N):
                dataset, _ = manager.restore_epoch(rank, epoch)
                assert dataset.to_bytes() == oracle(workload, epoch, rank)

    def test_refcount_conservation_after_gc(self):
        manager, _ = make_chain(depth=4)
        manager.prune(0)
        manager.prune(2)
        # recount: index must equal the union of live epochs' resolved sets
        expected = {}
        for epoch in manager.live_epochs():
            owner = manager._owner(epoch)
            for fp in manager.resolved_distinct(epoch):
                expected.setdefault(fp, set()).add(owner)
        assert len(manager.index) == len(expected)
        for fp, owners in expected.items():
            entry = manager.index.get(fp)
            assert entry is not None
            assert set(entry.refs) == owners
        # every stored chunk is referenced (no leaks)
        stored = set()
        for node in manager.cluster.nodes:
            stored.update(node.chunks.fingerprints())
        assert stored == set(expected)

    def test_double_prune_rejected(self):
        manager, _ = make_chain(depth=2)
        manager.prune(0)
        with pytest.raises(ChainStateError, match="already"):
            manager.prune(0)

    def test_prune_cascade_sweeps_retired_ancestors(self):
        manager, _ = make_chain(depth=2)
        manager.prune(0)
        manager.prune(1)
        assert set(manager.nodes) >= {2}
        manager.prune(2)
        assert manager.nodes == {}
        assert len(manager.index) == 0
        for node in manager.cluster.nodes:
            assert not list(node.chunks.fingerprints())
            assert not node.manifest_keys()

    def test_gc_bytes_freed_accounting(self):
        manager, _ = make_chain(depth=2)
        before = sum(
            node.chunks.nbytes_of(fp)
            for node in manager.cluster.nodes
            for fp in node.chunks.fingerprints()
        )
        result = manager.prune(2)
        after = sum(
            node.chunks.nbytes_of(fp)
            for node in manager.cluster.nodes
            for fp in node.chunks.fingerprints()
        )
        assert result.bytes_freed > 0
        # replicated chunks: physical bytes freed counts every replica
        assert before - after == result.bytes_freed


class TestCompact:
    def test_compact_equals_full(self):
        manager, workload = make_chain(depth=3)
        result = manager.compact(3)
        assert result.compacted
        node = manager.nodes[3]
        assert node.kind == "full" and node.parent_epoch is None
        for rank in range(N):
            dataset, _ = manager.restore_epoch(rank, 3)
            assert dataset.to_bytes() == oracle(workload, 3, rank)

    def test_compact_base_full_is_noop(self):
        manager, _ = make_chain(depth=1)
        result = manager.compact(0)
        assert not result.compacted
        assert result.new_dump_id == result.old_dump_id

    def test_compact_reanchors_descendants(self):
        manager, workload = make_chain(depth=3)
        manager.compact(1)
        # 2 and 3 still chain onto epoch 1 (now a full) and restore clean
        assert manager.nodes[2].parent_epoch == 1
        for epoch in (2, 3):
            for rank in range(N):
                dataset, _ = manager.restore_epoch(rank, epoch)
                assert dataset.to_bytes() == oracle(workload, epoch, rank)

    def test_compact_then_prune_ancestors_sweeps(self):
        manager, workload = make_chain(depth=3)
        manager.compact(3)
        for epoch in (0, 1, 2):
            manager.prune(epoch)
        assert set(manager.nodes) == {3}
        for rank in range(N):
            dataset, _ = manager.restore_epoch(rank, 3)
            assert dataset.to_bytes() == oracle(workload, 3, rank)

    def test_compact_pruned_epoch_rejected(self):
        manager, _ = make_chain(depth=1)
        manager.prune(0)
        with pytest.raises(ChainStateError, match="pruned"):
            manager.compact(0)


class TestBrokenChain:
    def test_lost_ancestor_chunk_is_typed_error(self):
        manager, _ = make_chain(depth=3)
        fp = manager.resolved_fps(3, 0)[0]
        for node in manager.cluster.nodes:
            node.chunks.discard(fp)
        with pytest.raises(ChainBrokenError) as excinfo:
            manager.restore_epoch(0, 3)
        assert excinfo.value.epoch == 3
        assert excinfo.value.missing
        assert excinfo.value.writer_epoch in range(4)

    def test_verify_epoch_names_writer(self):
        manager, workload = make_chain(depth=2)
        # kill a chunk epoch 2 itself wrote
        fp = sorted(manager.nodes[2].written_fingerprints())[0]
        for node in manager.cluster.nodes:
            node.chunks.discard(fp)
        reason = manager.verify_epoch(0, 2)
        if reason is not None:  # fp may belong to another rank's column
            assert "epoch 2" in reason

    def test_node_failure_within_replication_still_restores(self):
        manager, workload = make_chain(depth=2, degraded=True)
        manager.cluster.fail_node(0)
        for epoch in range(3):
            for rank in range(N):
                dataset, _ = manager.restore_epoch(rank, epoch)
                assert dataset.to_bytes() == oracle(workload, epoch, rank)


class TestLocalityRewrite:
    def test_rewrite_raises_locality_and_preserves_bytes(self):
        manager, workload = make_chain(depth=5, dirty_frac=0.25)
        result = manager.rewrite_for_locality(5, threshold=1.01)
        assert any(r.rewritten for r in result.ranks)
        for r in result.ranks:
            assert r.locality_after >= r.locality_before
        for rank in range(N):
            dataset, report = manager.restore_epoch(rank, 5)
            assert dataset.to_bytes() == oracle(workload, 5, rank)

    def test_rewrite_noop_above_threshold(self):
        manager, _ = make_chain(depth=1)
        result = manager.rewrite_for_locality(1, threshold=0.0)
        assert all(not r.rewritten for r in result.ranks)
        assert result.chunks_copied == 0

    def test_rewrite_pruned_epoch_rejected(self):
        manager, _ = make_chain(depth=1)
        manager.prune(0)
        with pytest.raises(ChainStateError, match="pruned"):
            manager.rewrite_for_locality(0)


class TestPersistence:
    def test_blob_round_trip_preserves_chain(self):
        manager, workload = make_chain(depth=3)
        manager.prune(0)
        blob = manager.to_blob()
        clone = ChainManager.from_blob(
            blob, manager.cluster, manager.config
        )
        assert clone.live_epochs() == manager.live_epochs()
        assert clone.next_epoch == manager.next_epoch
        assert set(clone.nodes) == set(manager.nodes)
        for epoch in clone.live_epochs():
            for rank in range(N):
                dataset, _ = clone.restore_epoch(rank, epoch)
                assert dataset.to_bytes() == oracle(workload, epoch, rank)

    def test_blob_rebuilds_refcounts(self):
        manager, _ = make_chain(depth=2)
        clone = ChainManager.from_blob(
            manager.to_blob(), manager.cluster, manager.config,
            index=GlobalDedupIndex(),
        )
        assert len(clone.index) == len(manager.index)
        # GC through the rebuilt manager must still converge to empty
        for epoch in list(clone.live_epochs()):
            clone.prune(epoch)
        assert len(clone.index) == 0

    def test_chunk_size_mismatch_rejected(self):
        manager, _ = make_chain()
        blob = manager.to_blob()
        other = DumpConfig(replication_factor=2, chunk_size=CHUNK * 2)
        with pytest.raises(ChainStateError, match="chunk_size"):
            ChainManager.from_blob(blob, manager.cluster, other)

    def test_save_load_file(self, tmp_path):
        manager, workload = make_chain(depth=2)
        path = tmp_path / "chain.rch1"
        manager.save(path)
        clone = ChainManager.load(path, manager.cluster, manager.config)
        dataset, _ = clone.restore_epoch(0, 2)
        assert dataset.to_bytes() == oracle(workload, 2, 0)


class TestTraceIntegration:
    def test_chain_spans_and_gauges_recorded(self):
        cluster = Cluster(N)
        config = DumpConfig(replication_factor=2, chunk_size=CHUNK)
        trace = Trace(rank=0, level="span")
        workload = MutatingWorkload(seed=5, chunk_size=CHUNK)
        manager = ChainManager(cluster, config, N, trace=trace)
        manager.chain_dump(workload, kind="full")
        workload.advance()
        manager.chain_dump(workload)
        manager.restore_epoch(0, 1)
        manager.compact(1)
        manager.prune(0)
        names = {span.name for span in trace.spans}
        assert {"chain-dump", "chain-restore", "chain-gc", "chain-compact"} <= names
        assert trace.metrics.gauge("chain_depth").value >= 1.0
