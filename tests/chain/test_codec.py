"""Property suite for the ``repro.chain/v1`` manifest-chain codec.

The digest columns are the RRQ1/RRP1 bug class all over again: numpy
S-dtype strings null-strip, so a digest ending in zero bytes would decode
short.  The round-trip strategies here deliberately generate trailing-zero
digests and zero-length delta columns to pin the void-dtype decode.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.node import ChainNode
from repro.storage.chain_codec import (
    _HEADER,
    _MAGIC,
    ChainCodecError,
    decode_chain,
    encode_chain,
)

DIGEST_SIZE = 8


@st.composite
def chain_columns(draw, n_ranks, digest_size):
    """Per-rank (segment_lengths, positions, fps) for one node."""
    lengths = []
    positions = []
    fps = []
    for _ in range(n_ranks):
        lengths.append(draw(st.lists(
            st.integers(min_value=0, max_value=2**40), min_size=1, max_size=4
        )))
        n_fps = draw(st.integers(min_value=0, max_value=6))
        positions.append(sorted(draw(st.lists(
            st.integers(min_value=0, max_value=2**40),
            min_size=n_fps, max_size=n_fps, unique=True,
        ))))
        # Trailing zeros on purpose: S-dtype would truncate these.
        fps.append([
            draw(st.binary(min_size=digest_size - 2, max_size=digest_size - 2))
            + b"\x00\x00"
            if draw(st.booleans())
            else draw(st.binary(min_size=digest_size, max_size=digest_size))
            for _ in range(n_fps)
        ])
    return lengths, positions, fps


@st.composite
def chains(draw):
    n_ranks = draw(st.integers(min_value=1, max_value=3))
    n_nodes = draw(st.integers(min_value=0, max_value=5))
    nodes = []
    for epoch in range(n_nodes):
        kind = "full" if epoch == 0 else draw(
            st.sampled_from(["full", "delta"])
        )
        lengths, positions, fps = draw(chain_columns(n_ranks, DIGEST_SIZE))
        if kind == "full":
            positions = [[] for _ in range(n_ranks)]
        parent = None
        if kind == "delta":
            parent = draw(st.integers(min_value=0, max_value=epoch - 1))
        nodes.append(ChainNode(
            epoch=epoch,
            kind=kind,
            dump_id=draw(st.integers(min_value=0, max_value=2**50)),
            parent_epoch=parent,
            retired=draw(st.booleans()),
            segment_lengths=lengths,
            positions=positions,
            fps=fps,
        ))
    return nodes, n_ranks


@settings(max_examples=60, deadline=None)
@given(
    data=chains(),
    chunk_size=st.integers(min_value=1, max_value=2**30),
    next_epoch=st.integers(min_value=0, max_value=2**31 - 1),
    next_dump_id=st.integers(min_value=0, max_value=2**50),
)
def test_round_trip(data, chunk_size, next_epoch, next_dump_id):
    nodes, n_ranks = data
    blob = encode_chain(
        nodes, n_ranks=n_ranks, chunk_size=chunk_size,
        next_epoch=next_epoch, next_dump_id=next_dump_id,
    )
    decoded, d_ranks, d_chunk, d_epoch, d_dump = decode_chain(blob)
    assert (d_ranks, d_chunk, d_epoch, d_dump) == (
        n_ranks, chunk_size, next_epoch, next_dump_id
    )
    assert len(decoded) == len(nodes)
    for want, got in zip(sorted(nodes, key=lambda n: n.epoch), decoded):
        assert got.epoch == want.epoch
        assert got.kind == want.kind
        assert got.dump_id == want.dump_id
        assert got.parent_epoch == want.parent_epoch
        assert got.retired == want.retired
        assert got.segment_lengths == want.segment_lengths
        assert got.positions == want.positions
        assert got.fps == want.fps


def test_trailing_zero_digests_survive():
    """The named bug class: digests ending in NUL bytes decode full-length."""
    fp = b"\xaa\xbb\x00\x00\x00\x00\x00\x00"
    node = ChainNode(
        epoch=0, kind="full", dump_id=0,
        segment_lengths=[[8]], positions=[[]], fps=[[fp]],
    )
    blob = encode_chain([node], 1, 8, 1, 1)
    (decoded,), *_ = decode_chain(blob)
    assert decoded.fps == [[fp]]
    assert len(decoded.fps[0][0]) == 8


def test_zero_length_delta_round_trip():
    """A rank with no dirty chunks: empty positions/fps columns."""
    full = ChainNode(
        epoch=0, kind="full", dump_id=0,
        segment_lengths=[[16], [16]],
        positions=[[], []],
        fps=[[b"\x01" * 8, b"\x02" * 8], [b"\x03" * 8]],
    )
    empty_delta = ChainNode(
        epoch=1, kind="delta", dump_id=1, parent_epoch=0,
        segment_lengths=[[16], [16]],
        positions=[[], []],
        fps=[[], []],
    )
    blob = encode_chain([full, empty_delta], 2, 8, 2, 2)
    (d_full, d_delta), *_ = decode_chain(blob)
    assert d_delta.kind == "delta"
    assert d_delta.positions == [[], []]
    assert d_delta.fps == [[], []]
    assert d_full.fps == full.fps


def test_empty_chain_round_trip():
    blob = encode_chain([], 4, 4096, 0, 0)
    nodes, n_ranks, chunk_size, next_epoch, next_dump_id = decode_chain(blob)
    assert nodes == [] and n_ranks == 4 and chunk_size == 4096


def test_bad_magic_rejected():
    blob = encode_chain([], 1, 64, 0, 0)
    with pytest.raises(ChainCodecError, match="magic"):
        decode_chain(b"XXXX" + blob[4:])


def test_bad_version_rejected():
    blob = bytearray(encode_chain([], 1, 64, 0, 0))
    blob[4:8] = struct.pack("<I", 99)
    with pytest.raises(ChainCodecError, match="version"):
        decode_chain(bytes(blob))


def test_truncated_blob_rejected():
    with pytest.raises(ChainCodecError, match="short"):
        decode_chain(_MAGIC + b"\x00" * (_HEADER.size - 5))


def test_trailing_garbage_rejected():
    blob = encode_chain([], 1, 64, 0, 0)
    with pytest.raises(ChainCodecError, match="trailing"):
        decode_chain(blob + b"\x00")


def test_mixed_digest_sizes_rejected():
    node = ChainNode(
        epoch=0, kind="full", dump_id=0,
        segment_lengths=[[8]], positions=[[]],
        fps=[[b"\x01" * 8, b"\x02" * 4]],
    )
    with pytest.raises(ChainCodecError, match="mixed"):
        encode_chain([node], 1, 8, 1, 1)


def test_rank_column_mismatch_rejected():
    node = ChainNode(
        epoch=0, kind="full", dump_id=0,
        segment_lengths=[[8]], positions=[[]], fps=[[b"\x01" * 8]],
    )
    with pytest.raises(ChainCodecError, match="rank"):
        encode_chain([node], 2, 8, 1, 1)
