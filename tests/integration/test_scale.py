"""Moderate-scale sanity: the simulator at O(100) ranks, fast.

These are the smoke versions of the 408-rank benchmark sweeps — they run
in seconds inside the unit suite and pin the orderings that every figure
depends on, so a regression shows up here before a long bench run.
"""

import pytest

from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.netsim import MachineProfile, dump_time
from repro.sim import compute_metrics, simulate_dump

CS = 256
N = 96


@pytest.fixture(scope="module")
def workload_indices():
    w = SyntheticWorkload(
        chunks_per_rank=48, chunk_size=CS,
        frac_global=0.3, frac_group=0.1, group_size=8,
        frac_zero=0.1, frac_local_dup=0.2,
    )
    return w.build_indices(N, chunk_size=CS)


def run(indices, strategy, k=3, shuffle=True):
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=1 << 17, shuffle=shuffle)
    result = simulate_dump(indices, cfg)
    return result, compute_metrics(indices, result)


class TestOrderings:
    def test_unique_content_ordering(self, workload_indices):
        values = {
            s: run(workload_indices, s)[1].unique_content_bytes for s in Strategy
        }
        assert values[Strategy.COLL_DEDUP] < values[Strategy.LOCAL_DEDUP]
        assert values[Strategy.LOCAL_DEDUP] < values[Strategy.NO_DEDUP]

    def test_traffic_ordering(self, workload_indices):
        values = {
            s: run(workload_indices, s)[1].sent_total_bytes for s in Strategy
        }
        assert values[Strategy.COLL_DEDUP] < values[Strategy.LOCAL_DEDUP]
        assert values[Strategy.LOCAL_DEDUP] < values[Strategy.NO_DEDUP]

    # Scale the 12 KB/rank synthetic state to ~1 GB/rank (paper-sized):
    # at realistic dump volumes the data phases dominate the (F-capped)
    # reduction cost, which is when coll-dedup pays off — tiny dumps would
    # not amortise the reduction, exactly the paper's N=1 row.
    VOLUME_SCALE = 80_000

    def test_modelled_time_ordering(self, workload_indices):
        machine = MachineProfile.shamrock()
        times = {
            s: dump_time(
                run(workload_indices, s)[0], machine, volume_scale=self.VOLUME_SCALE
            ).total
            for s in Strategy
        }
        assert times[Strategy.COLL_DEDUP] < times[Strategy.LOCAL_DEDUP]
        assert times[Strategy.LOCAL_DEDUP] < times[Strategy.NO_DEDUP]

    def test_small_dumps_do_not_amortise_the_reduction(self, workload_indices):
        """The flip side (paper Table I, N=1): when the dump is tiny, the
        collective reduction costs more than it saves."""
        machine = MachineProfile.shamrock()
        coll = dump_time(
            run(workload_indices, Strategy.COLL_DEDUP)[0], machine, volume_scale=100
        )
        local = dump_time(
            run(workload_indices, Strategy.LOCAL_DEDUP)[0], machine, volume_scale=100
        )
        assert coll.reduction > 0
        assert coll.total > local.total

    def test_k_monotonicity(self, workload_indices):
        times = []
        machine = MachineProfile.shamrock()
        for k in (1, 2, 4, 6):
            result, _ = run(workload_indices, Strategy.COLL_DEDUP, k=k)
            times.append(dump_time(result, machine, volume_scale=self.VOLUME_SCALE).total)
        assert times == sorted(times)

    def test_replication_reached_at_scale(self, workload_indices):
        _result, metrics = run(workload_indices, Strategy.COLL_DEDUP, k=3)
        assert metrics.effective_replication_min >= 3

    def test_shuffle_does_not_change_volume(self, workload_indices):
        _r_on, m_on = run(workload_indices, Strategy.COLL_DEDUP, shuffle=True)
        _r_off, m_off = run(workload_indices, Strategy.COLL_DEDUP, shuffle=False)
        assert m_on.sent_total_bytes == m_off.sent_total_bytes
        assert m_on.recv_max <= m_off.recv_max


class TestHashVariants:
    @pytest.mark.parametrize("hash_name", ["sha1", "blake2b", "md5", "sha256"])
    def test_dedup_results_hash_independent(self, hash_name):
        """Dedup structure depends on content, not on the hash function."""
        from repro.apps.synthetic import SyntheticWorkload

        w = SyntheticWorkload(chunks_per_rank=24, chunk_size=CS, frac_global=0.5)
        indices = w.build_indices(12, chunk_size=CS, hash_name=hash_name)
        cfg = DumpConfig(replication_factor=3, chunk_size=CS,
                         hash_name=hash_name, f_threshold=4096)
        result = simulate_dump(indices, cfg)
        metrics = compute_metrics(indices, result)
        # Identical dedup outcome regardless of the hash function used.
        ref = SyntheticWorkload(chunks_per_rank=24, chunk_size=CS, frac_global=0.5)
        ref_idx = ref.build_indices(12, chunk_size=CS, hash_name="sha1")
        ref_res = simulate_dump(ref_idx, cfg.with_(hash_name="sha1"))
        ref_m = compute_metrics(ref_idx, ref_res)
        assert metrics.unique_content_bytes == ref_m.unique_content_bytes
        assert metrics.sent_total_bytes == ref_m.sent_total_bytes
