"""Thread vs process backend equivalence over the full dump/restore/repair
stack: identical ``DumpReport``s, byte-identical manifests and cluster
contents, identical restored datasets.

These are the tests that make the process backend safe to use as a drop-in
accelerator: everything a caller can observe — reports, cluster accounting,
restores — must be indistinguishable from a thread-backend run.
"""

import dataclasses

import pytest

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.core.runner import run_collective
from repro.ftrt.runtime import run_checkpointed
from repro.repair import repair_cluster, scan_cluster
from repro.storage import Cluster, FailureInjector

from tests.conftest import make_rank_dataset

BACKENDS = ["thread", "process"]
CS = 64
N = 4
TIMEOUT = 60


def cluster_state(cluster):
    """Everything observable about a cluster, in comparable form."""
    nodes = []
    for node in cluster.nodes:
        cs = node.chunks
        nodes.append(
            {
                "node": node.node_id,
                "alive": node.alive,
                "logical": cs.logical_bytes,
                "physical": cs.physical_bytes,
                "puts": cs.put_count,
                "chunks": sorted(
                    (fp, cs.refcount(fp), cs.get(fp)) for fp in cs.fingerprints()
                ),
                "manifests": sorted(
                    (key, node.get_manifest_blob(*key))
                    for key in node.manifest_keys()
                ),
                "parity_bytes": node.parity_bytes,
            }
        )
    return nodes


def comparable_report(report):
    """A report as a nested dict with wall-clock timings zeroed (the only
    field legitimately allowed to differ across backends)."""
    d = dataclasses.asdict(report)
    for counters in d.get("phases", {}).values():
        counters["seconds"] = 0.0
    return d


def dump_once(
    backend,
    strategy,
    *,
    dead=(),
    degraded=False,
    k=3,
    dump_id=0,
    pipelined=False,
    integrity="crypto",
    shard_count=1,
):
    cfg = DumpConfig(
        replication_factor=k,
        chunk_size=CS,
        f_threshold=4096,
        strategy=strategy,
        degraded=degraded,
        pipelined=pipelined,
        integrity=integrity,
    )
    cluster = Cluster(N, shard_count=shard_count)
    for node_id in dead:
        cluster.fail_node(node_id)
    reports, _world = run_collective(
        N,
        lambda comm: dump_output(
            comm, make_rank_dataset(comm.rank), cfg, cluster, dump_id=dump_id
        ),
        cluster=cluster,
        backend=backend,
        timeout=TIMEOUT,
    )
    return cluster, reports


class TestDumpEquivalence:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_reports_cluster_and_restores_identical(self, strategy):
        observed = {}
        for backend in BACKENDS:
            cluster, reports = dump_once(backend, strategy)
            restored = [
                restore_dataset(cluster, rank, 0)[0].to_bytes() for rank in range(N)
            ]
            observed[backend] = (
                [dataclasses.astuple(r) for r in reports],
                cluster_state(cluster),
                restored,
            )
        t, p = observed["thread"], observed["process"]
        assert t[0] == p[0], "DumpReports differ across backends"
        assert t[1] == p[1], "cluster contents differ across backends"
        assert t[2] == p[2], "restored datasets differ across backends"
        for rank in range(N):
            assert t[2][rank] == make_rank_dataset(rank).to_bytes()

    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("integrity", ["crypto", "fast"])
    def test_pipelined_dump_identical_across_backends(
        self, strategy, integrity
    ):
        """The double-buffered pipelined dump and the vectorised
        non-cryptographic fingerprint mode are observably identical across
        backends, and identical to the strict phase-ordered dump."""
        observed = {}
        for backend in BACKENDS:
            cluster, reports = dump_once(
                backend, strategy, pipelined=True, integrity=integrity
            )
            restored = [
                restore_dataset(cluster, rank, 0)[0].to_bytes()
                for rank in range(N)
            ]
            observed[backend] = (
                [dataclasses.astuple(r) for r in reports],
                cluster_state(cluster),
                restored,
            )
        assert observed["thread"] == observed["process"]
        # Pipelining must not change what lands in the cluster: a strict
        # dump of the same config yields byte-identical contents.
        strict, _ = dump_once(
            "thread", strategy, pipelined=False, integrity=integrity
        )
        assert cluster_state(strict) == observed["thread"][1]
        for rank in range(N):
            assert observed["thread"][2][rank] == (
                make_rank_dataset(rank).to_bytes()
            )

    def test_consecutive_dumps_identical(self):
        observed = {}
        for backend in BACKENDS:
            cfg = DumpConfig(
                replication_factor=3, chunk_size=CS, f_threshold=4096
            )
            cluster = Cluster(N)
            for dump_id in range(2):
                run_collective(
                    N,
                    lambda comm: dump_output(
                        comm,
                        make_rank_dataset(comm.rank),
                        cfg,
                        cluster,
                        dump_id=dump_id,
                    ),
                    cluster=cluster,
                    backend=backend,
                    timeout=TIMEOUT,
                )
            observed[backend] = cluster_state(cluster)
        assert observed["thread"] == observed["process"]


class TestShardedStoreEquivalence:
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("shard_count", [2, 8])
    def test_sharded_cluster_identical_to_flat(self, strategy, shard_count):
        """A cluster on sharded chunk stores is observably identical to the
        flat-store cluster on both backends: same reports, same chunk
        payloads/refcounts/accounting, same restored bytes.  This is what
        lets the multi-tenant service turn sharding on without changing
        anything the dump/restore/repair stack can see."""
        observed = {}
        for backend in BACKENDS:
            cluster, reports = dump_once(
                backend, strategy, shard_count=shard_count
            )
            restored = [
                restore_dataset(cluster, rank, 0)[0].to_bytes()
                for rank in range(N)
            ]
            observed[backend] = (
                [dataclasses.astuple(r) for r in reports],
                cluster_state(cluster),
                restored,
            )
        assert observed["thread"] == observed["process"]
        flat_cluster, flat_reports = dump_once("thread", strategy)
        assert observed["thread"][0] == [
            dataclasses.astuple(r) for r in flat_reports
        ]
        assert observed["thread"][1] == cluster_state(flat_cluster)

    @pytest.mark.parametrize("shard_count", [2, 8])
    def test_sharded_repair_identical_to_flat(self, shard_count):
        observed = {}
        for layout in (1, shard_count):
            cluster, _reports = dump_once(
                "thread", Strategy.COLL_DEDUP, shard_count=layout
            )
            FailureInjector(cluster, seed=7).fail_random_nodes(2)
            report = repair_cluster(cluster, 3, timeout=TIMEOUT)
            observed[layout] = (
                cluster_state(cluster),
                comparable_report(report),
                scan_cluster(cluster, 3).deficit_chunks,
            )
        assert observed[1] == observed[shard_count]
        assert observed[shard_count][2] == 0


class TestDegradedDumpEquivalence:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_dead_node_dump_identical(self, strategy):
        observed = {}
        for backend in BACKENDS:
            cluster, reports = dump_once(
                backend, strategy, dead=(1,), degraded=True
            )
            restored = [
                restore_dataset(cluster, rank, 0)[0].to_bytes() for rank in range(N)
            ]
            observed[backend] = (
                [dataclasses.astuple(r) for r in reports],
                cluster_state(cluster),
                restored,
            )
        assert observed["thread"] == observed["process"]
        assert any(r.degraded for r in reports)


class TestRepairEquivalence:
    def test_repair_results_identical(self):
        observed = {}
        for backend in BACKENDS:
            cluster, _reports = dump_once(backend, Strategy.COLL_DEDUP)
            FailureInjector(cluster, seed=7).fail_random_nodes(2)
            report = repair_cluster(cluster, 3, timeout=TIMEOUT, backend=backend)
            scan_after = scan_cluster(cluster, 3)
            observed[backend] = (
                cluster_state(cluster),
                comparable_report(report),
                scan_after.deficit_chunks,
            )
        assert observed["thread"] == observed["process"]
        assert observed["process"][2] == 0, "repair left deficits"


class TestCheckpointRuntimeEquivalence:
    def test_run_checkpointed_merges_cluster_back(self):
        observed = {}
        for backend in BACKENDS:
            cfg = DumpConfig(
                replication_factor=2,
                chunk_size=CS,
                f_threshold=4096,
                spmd_backend=backend,
                spmd_timeout=TIMEOUT,
            )
            cluster = Cluster(N)

            def program(runtime):
                data = bytearray(make_rank_dataset(runtime.comm.rank).to_bytes())
                runtime.memory.register("state", data)
                for step in range(1, 5):
                    runtime.maybe_checkpoint(step)
                return runtime.stats.checkpoints_taken

            results = run_checkpointed(N, cluster, cfg, interval=2, program=program)
            observed[backend] = (results, cluster_state(cluster))
        assert observed["thread"] == observed["process"]
        assert observed["process"][0] == [2] * N
        # The parent-visible cluster holds every checkpoint's manifests.
        for rank in range(N):
            for dump_id in (0, 1):
                assert cluster.find_manifest(rank, dump_id) is not None
