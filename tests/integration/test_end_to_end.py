"""End-to-end: real mini-apps checkpointing through the full stack, with
failures, restarts and cross-strategy consistency."""

import numpy as np
import pytest

from repro.apps.cm1 import CM1RankModel, VortexSpec
from repro.apps.hpccg import HPCCGRankSolver
from repro.core import DumpConfig, Strategy
from repro.ftrt import CheckpointRuntime
from repro.simmpi import World
from repro.storage import Cluster, FailureInjector


class TestHPCCGCheckpointRestart:
    """Run real CG on every rank, checkpoint mid-solve, kill nodes, restart,
    and verify the solve continues to the same answer."""

    N = 4
    K = 3

    def test_restart_resumes_identical_trajectory(self):
        cluster = Cluster(self.N)
        cfg = DumpConfig(replication_factor=self.K, chunk_size=256,
                         f_threshold=8192)

        def prog(comm):
            solver = HPCCGRankSolver(6, 6, 6)
            rt = CheckpointRuntime(comm, cluster, cfg, interval=10)
            for name, arr in solver.solver_arrays().items():
                if name != "indices":
                    rt.memory.register(name, arr)
            rt.memory.register("indices", solver.indices)

            solver.iterate(10)
            rt.maybe_checkpoint(10)
            solver.iterate(10)  # work to be lost
            reference_x = solver.x.copy()

            # Disaster strikes: kill K-1 nodes (once, via rank 0).
            comm.barrier()
            if comm.rank == 0:
                FailureInjector(cluster, seed=5).fail_random_nodes(self.K - 1)
            comm.barrier()

            rt.restart()  # back to iteration 10
            # The CG scalar state (_rs_old) must be re-derived on restart.
            solver._rs_old = float(solver.r @ solver.r)
            solver.iterate(10)  # redo the lost work
            return np.allclose(solver.x, reference_x, rtol=1e-8)

        assert all(World(self.N).run(prog))


class TestCM1CheckpointRestart:
    def test_two_interval_checkpoints_like_paper(self):
        """70 steps, checkpoint every 30 (the paper's CM1 configuration,
        scaled down)."""
        n = 4
        cluster = Cluster(n)
        cfg = DumpConfig(replication_factor=2, chunk_size=256, f_threshold=8192)

        def prog(comm):
            px = 2
            ix, iy = comm.rank % px, comm.rank // px
            vortex = VortexSpec(center_x=16, center_y=16, radius=10)
            model = CM1RankModel(16, 16, 4, origin=(ix * 16, iy * 16), vortex=vortex)
            rt = CheckpointRuntime(comm, cluster, cfg, interval=30)
            for name, arr in model.state_arrays().items():
                rt.memory.register(name, arr)
            for step in range(1, 71):
                model.step()
                rt.maybe_checkpoint(step)
            state_at_70 = model.fields["theta"].copy()
            rt.restart()  # latest checkpoint: step 60
            model.step(10)
            return np.array_equal(model.fields["theta"], state_at_70), rt.stats

        results = World(n).run(prog)
        for same, stats in results:
            assert same
            assert stats.checkpoints_taken == 2


class TestCrossStrategyConsistency:
    """All three strategies must place *the same logical data* — only the
    physical layout differs."""

    def test_restored_data_identical_across_strategies(self):
        from repro.core import dump_output, restore_dataset
        from tests.conftest import make_rank_dataset

        n = 6
        restored = {}
        for strategy in Strategy:
            cfg = DumpConfig(replication_factor=3, chunk_size=64,
                             strategy=strategy, f_threshold=4096)
            cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
            World(n).run(
                lambda comm: dump_output(
                    comm, make_rank_dataset(comm.rank), cfg, cluster
                )
            )
            restored[strategy] = [
                restore_dataset(cluster, r)[0].to_bytes() for r in range(n)
            ]
        for rank in range(n):
            assert (
                restored[Strategy.NO_DEDUP][rank]
                == restored[Strategy.LOCAL_DEDUP][rank]
                == restored[Strategy.COLL_DEDUP][rank]
            )

    def test_storage_footprint_ordering(self):
        """Physical storage: coll < local < no-dedup on redundant data."""
        from repro.core import dump_output
        from tests.conftest import make_rank_dataset

        n = 8
        footprint = {}
        for strategy in Strategy:
            cfg = DumpConfig(replication_factor=3, chunk_size=64,
                             strategy=strategy, f_threshold=4096)
            cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
            World(n).run(
                lambda comm: dump_output(
                    comm, make_rank_dataset(comm.rank), cfg, cluster
                )
            )
            footprint[strategy] = cluster.total_physical_bytes
        assert (
            footprint[Strategy.COLL_DEDUP]
            < footprint[Strategy.LOCAL_DEDUP]
            < footprint[Strategy.NO_DEDUP]
        )
