"""Acceptance: span-level dumps export per-rank Perfetto timelines.

This is the tentpole end-to-end contract from the observability layer: a
span-level dump on either backend yields a ``repro.obs/run/v1`` snapshot
whose Chrome trace has one track per rank with the dump phases as nested
slices, and ``repro-eval trace`` renders per-phase totals plus rank skew
from the same file.
"""

import pytest

from repro.cli import main
from repro.core import DumpConfig, Strategy, dump_output
from repro.core.runner import run_collective
from repro.obs.export import capture_run, chrome_trace, write_run
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

BACKENDS = ["thread", "process"]
CS = 64
N = 4
TIMEOUT = 60


def _span_run(backend):
    cfg = DumpConfig(
        replication_factor=3,
        chunk_size=CS,
        f_threshold=4096,
        strategy=Strategy.COLL_DEDUP,
        trace_level="span",
    )
    cluster = Cluster(N)
    _results, world = run_collective(
        N,
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster),
        cluster=cluster,
        backend=backend,
        timeout=TIMEOUT,
    )
    return capture_run(world, meta={"backend": backend, "n": N})


def _spans_by_name(entry):
    table = {}
    for idx, span in enumerate(entry["spans"]):
        table.setdefault(span["name"], []).append((idx, span))
    return table


@pytest.mark.parametrize("backend", BACKENDS)
class TestSpanExport:
    def test_one_track_per_rank_with_nested_phases(self, backend):
        run = _span_run(backend)
        assert [entry["rank"] for entry in run["ranks"]] == list(range(N))

        doc = chrome_trace(run)
        events = doc["traceEvents"]
        tracks = {e["tid"] for e in events if e["ph"] == "X"}
        assert tracks == set(range(N))
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {f"rank {r}" for r in range(N)}

    def test_dump_phases_nest_under_dump_span(self, backend):
        run = _span_run(backend)
        for entry in run["ranks"]:
            spans = _spans_by_name(entry)
            (dump_idx, dump), = spans["dump"]
            assert dump["parent"] == -1
            for phase in ("hash", "reduction", "exchange", "write"):
                (_, span), = spans[phase]
                assert span["parent"] == dump_idx, f"{phase} not under dump"
            # hmerge nests under reduction, allreduce rounds under hmerge.
            (hmerge_idx, hmerge), = spans["hmerge"]
            (reduction_idx, _), = spans["reduction"]
            assert hmerge["parent"] == reduction_idx
            assert spans["allreduce-round"], "no allreduce rounds recorded"
            for _, span in spans["allreduce-round"]:
                assert span["parent"] == hmerge_idx

    def test_span_attrs_carry_dump_stats(self, backend):
        run = _span_run(backend)
        for entry in run["ranks"]:
            spans = _spans_by_name(entry)
            (_, dump), = spans["dump"]
            assert dump["attrs"]["strategy"] == "coll-dedup"
            (_, hashed), = spans["hash"]
            assert hashed["attrs"]["chunks"] > 0
            assert entry["metrics"]["histograms"]["chunk_size_bytes"]["count"] > 0


class TestTraceCli:
    def test_trace_report_from_span_run(self, tmp_path, capsys):
        run = _span_run("thread")
        path = write_run(tmp_path / "run.json", run)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        for phase in ("hash", "exchange", "write"):
            assert phase in out
        assert "rank skew" in out
        assert "spans recorded:" in out

    def test_trace_ab_diff(self, tmp_path, capsys):
        run = _span_run("thread")
        a = write_run(tmp_path / "a.json", run)
        b = write_run(tmp_path / "b.json", run)
        assert main(["trace", str(a), "--against", str(b)]) == 0
        assert "A/B diff vs baseline" in capsys.readouterr().out
