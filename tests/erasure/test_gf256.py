"""GF(2^8) field axioms and bulk operations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.erasure.gf256 import GF256

bytes_st = st.integers(0, 255)
nonzero_st = st.integers(1, 255)


class TestFieldAxioms:
    @given(bytes_st, bytes_st)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(bytes_st, bytes_st, bytes_st)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(bytes_st, bytes_st, bytes_st)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(bytes_st)
    def test_mul_identity(self, a):
        assert GF256.mul(a, 1) == a
        assert GF256.mul(a, 0) == 0

    @given(nonzero_st)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(bytes_st, nonzero_st)
    def test_div_is_mul_by_inverse(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    @given(nonzero_st, st.integers(0, 20))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = GF256.mul(expected, a)
        assert GF256.pow(a, n) == expected

    def test_exp_log_tables_consistent(self):
        for a in range(1, 256):
            assert GF256.EXP[GF256.LOG[a]] == a


class TestBulkOperations:
    @given(bytes_st, st.binary(min_size=1, max_size=64))
    def test_mul_scalar_vec_matches_scalar(self, scalar, data):
        vec = np.frombuffer(data, dtype=np.uint8)
        out = GF256.mul_scalar_vec(scalar, vec)
        for i, v in enumerate(vec):
            assert out[i] == GF256.mul(scalar, int(v))

    def test_matmul_identity(self):
        data = np.arange(32, dtype=np.uint8).reshape(4, 8)
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(GF256.matmul(identity, data), data)

    def test_matmul_shape_validation(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.eye(2, dtype=np.uint8), np.zeros((3, 4), dtype=np.uint8))


class TestSolve:
    def test_identity_solve(self):
        rhs = np.arange(12, dtype=np.uint8).reshape(3, 4)
        out = GF256.solve(np.eye(3, dtype=np.uint8), rhs)
        assert np.array_equal(out, rhs)

    @given(st.integers(1, 5), st.data())
    def test_solve_inverts_random_systems(self, k, data):
        rng = np.random.RandomState(data.draw(st.integers(0, 1000)))
        # Build a guaranteed-invertible matrix: random until nonsingular.
        for _ in range(50):
            m = rng.randint(0, 256, size=(k, k)).astype(np.uint8)
            x = rng.randint(0, 256, size=(k, 3)).astype(np.uint8)
            rhs = GF256.matmul(m, x)
            try:
                solved = GF256.solve(m, rhs)
            except ValueError:
                continue  # singular draw; try another
            assert np.array_equal(solved, x)
            return
        pytest.skip("no invertible matrix drawn")

    def test_singular_matrix_raises(self):
        m = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError, match="singular"):
            GF256.solve(m, np.zeros((2, 1), dtype=np.uint8))
