"""Erasure-coded redundancy end to end: cross-rank stripe groups with
rotating parity holders, and decode-on-restore."""

import pytest

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.erasure.ec_dump import (
    ParityRecord,
    effective_geometry,
    group_structure,
    parity_shard,
    reconstruct_chunk,
)
from repro.erasure.reed_solomon import ReedSolomon
from repro.simmpi import World
from repro.storage import Cluster
from repro.storage.local_store import StorageError

from tests.conftest import make_rank_dataset

CS = 64


def dump_parity(n, k=3, stripe_data=4, cluster=None):
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, f_threshold=4096,
                     redundancy="parity", stripe_data=stripe_data)
    if cluster is None:
        cluster = Cluster(n)
    reports = World(n).run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
    )
    return reports, cluster


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="redundancy"):
            DumpConfig(redundancy="raid5")
        with pytest.raises(ValueError, match="stripe_data"):
            DumpConfig(redundancy="parity", stripe_data=0)
        with pytest.raises(ValueError, match="coll-dedup"):
            DumpConfig(redundancy="parity", strategy=Strategy.NO_DEDUP)

    def test_simulator_rejects_parity(self):
        from repro.core.local_dedup import index_from_fingerprints
        from repro.sim import simulate_dump

        idx = index_from_fingerprints([b"x" * 20], CS)
        with pytest.raises(ValueError, match="threaded"):
            simulate_dump([idx], DumpConfig(redundancy="parity"))


class TestGeometry:
    def test_effective_geometry_caps(self):
        assert effective_geometry(8, 3, 408) == (8, 2)
        assert effective_geometry(8, 3, 6) == (4, 2)  # d capped at n - m
        assert effective_geometry(8, 1, 6) == (6, 0)  # K=1: no parity
        assert effective_geometry(8, 4, 2) == (1, 1)

    def test_group_structure_covers_all_positions(self):
        groups = group_structure(10, 4, 2)
        covered = [p for members, _h in groups for p in members]
        assert covered == list(range(10))
        for members, holders in groups:
            assert len(holders) == 2
            assert not set(members) & set(holders)

    def test_last_group_holders_wrap(self):
        groups = group_structure(10, 4, 2)
        assert groups[-1] == ([8, 9], [0, 1])

    def test_parity_shard_matches_encoder(self):
        codec = ReedSolomon(6, 4)
        data = [bytes([i]) * 16 for i in range(4)]
        full = codec.encode(data)
        assert parity_shard(codec, 0, data) == full[4]
        assert parity_shard(codec, 1, data) == full[5]


class TestParityDump:
    def test_roundtrip_without_failures(self):
        n = 6
        _reports, cluster = dump_parity(n)
        for rank in range(n):
            restored, report = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)
            assert report.decoded_chunks == 0  # nothing lost yet

    def test_storage_cheaper_than_replication(self):
        """The EC win: parity occupies m/d of the protected data instead of
        m full copies."""
        n, k = 12, 3
        _preports, pcluster = dump_parity(n, k=k, stripe_data=4)
        cfg = DumpConfig(replication_factor=k, chunk_size=CS, f_threshold=4096)
        rcluster = Cluster(n)
        World(n).run(
            lambda comm: dump_output(
                comm, make_rank_dataset(comm.rank), cfg, rcluster
            )
        )
        parity_total = pcluster.total_physical_bytes + sum(
            node.parity_bytes for node in pcluster.nodes
        )
        assert parity_total < rcluster.total_physical_bytes

    def test_parity_held_by_non_members(self):
        n = 8
        _reports, cluster = dump_parity(n, k=3, stripe_data=4)
        for node in cluster.nodes:
            for record in node._parity:
                assert node.node_id not in record.group_members

    def test_restore_decodes_after_failure(self):
        """Kill a rank's node: its unique chunks have no replica anywhere —
        only the cross-rank stripes can bring them back."""
        n = 6
        _reports, cluster = dump_parity(n, k=3, stripe_data=4)
        cluster.fail_node(2)
        restored, report = restore_dataset(cluster, 2)
        assert restored == make_rank_dataset(2)
        assert report.decoded_chunks > 0

    @pytest.mark.parametrize("victims", [(0, 1), (2, 5), (3, 4), (1, 6)])
    def test_survives_any_k_minus_1_failures(self, victims):
        """m = K-1 = 2 parity shards, data spread over d distinct nodes:
        any 2 node losses leave every stripe decodable."""
        n, k = 8, 3
        _reports, cluster = dump_parity(n, k=k, stripe_data=4)
        for v in victims:
            cluster.fail_node(v)
        for rank in range(n):
            restored, _report = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)

    def test_too_many_failures_detected(self):
        """Losing more stripe shards than m must fail loudly, not corrupt:
        kill two members of one stripe group when m=1."""
        n, k = 8, 2  # m = 1
        _reports, cluster = dump_parity(n, k=k, stripe_data=4)
        # Find two co-members of one group from any parity record.
        record = next(
            r for node in cluster.nodes for r in node._parity
            if sum(1 for fp in r.fingerprints if fp) >= 2
        )
        members_with_data = [
            rank for rank, fp in zip(record.group_members, record.fingerprints) if fp
        ]
        cluster.fail_node(members_with_data[0])
        cluster.fail_node(members_with_data[1])
        with pytest.raises(StorageError):
            restore_dataset(cluster, members_with_data[0])

    def test_k1_is_a_noop(self):
        reports, cluster = dump_parity(3, k=1)
        assert all(node.parity_bytes == 0 for node in cluster.nodes)
        assert all(r.parity_stripes == 0 for r in reports)


class TestReconstructChunk:
    def make_stripe(self, cluster, chunks, d=4, m=2, dump_id=0):
        codec = ReedSolomon(d + m, d)
        fps = list(chunks)
        shards = [chunks[fp].ljust(CS, b"\x00") for fp in fps]
        while len(shards) < d:
            fps.append(b"")
            shards.append(b"\x00" * CS)
        records = []
        for j in range(m):
            records.append(ParityRecord(
                dump_id=dump_id,
                stripe_index=0,
                group_members=tuple(range(len(fps))),
                fingerprints=tuple(fps),
                chunk_sizes=tuple(len(chunks.get(fp, b"")) for fp in fps),
                stripe_data=d,
                stripe_parity=m,
                shard_index=j,
                shard=parity_shard(codec, j, shards),
            ))
        return fps, records

    def chunks(self, count):
        return {bytes([i + 1]) * 20: bytes([i]) * (CS - i % 3) for i in range(count)}

    def test_reconstruct_with_padding(self):
        cluster = Cluster(4)
        chunks = self.chunks(3)  # short stripe: one zero pad
        fps, records = self.make_stripe(cluster, chunks, d=4, m=2)
        victim = fps[1]
        for fp in fps[:3]:
            if fp != victim:
                cluster.nodes[1].chunks.put(fp, chunks[fp])
        cluster.nodes[2].put_parity(records[0])
        rebuilt = reconstruct_chunk(cluster, victim, dump_id=0)
        assert rebuilt == chunks[victim]

    def test_two_losses_need_two_shards(self):
        cluster = Cluster(4)
        chunks = self.chunks(4)
        fps, records = self.make_stripe(cluster, chunks, d=4, m=2)
        lost = fps[:2]
        for fp in fps[2:]:
            cluster.nodes[1].chunks.put(fp, chunks[fp])
        cluster.nodes[2].put_parity(records[0])
        cluster.nodes[3].put_parity(records[1])
        for fp in lost:
            assert reconstruct_chunk(cluster, fp, dump_id=0) == chunks[fp]

    def test_no_parity_raises(self):
        cluster = Cluster(2)
        with pytest.raises(StorageError, match="parity"):
            reconstruct_chunk(cluster, b"\x07" * 20, dump_id=0)

    def test_insufficient_shards_raises(self):
        cluster = Cluster(3)
        chunks = self.chunks(4)
        _fps, records = self.make_stripe(cluster, chunks, d=4, m=1)
        cluster.nodes[1].put_parity(records[0])  # parity alone: 1 < 4
        with pytest.raises(StorageError, match="shards alive"):
            reconstruct_chunk(cluster, list(chunks)[0], dump_id=0)


class TestECAwareVerification:
    def test_verify_restorable_sees_parity(self):
        from repro.core.restore import verify_restorable

        n = 6
        _reports, cluster = dump_parity(n, k=3, stripe_data=4)
        cluster.fail_node(2)
        # rank 2's unique chunks have no live replica, but verify must agree
        # with restore: the stripes can rebuild them.
        assert verify_restorable(cluster, 2) is None

    def test_verify_reports_dead_stripes(self):
        from repro.core.restore import verify_restorable

        n, k = 8, 2  # m = 1: two co-member losses kill a stripe
        _reports, cluster = dump_parity(n, k=k, stripe_data=4)
        record = next(
            r for node in cluster.nodes for r in node._parity
            if sum(1 for fp in r.fingerprints if fp) >= 2
        )
        members = [
            rank for rank, fp in zip(record.group_members, record.fingerprints) if fp
        ]
        cluster.fail_node(members[0])
        cluster.fail_node(members[1])
        reason = verify_restorable(cluster, members[0])
        assert reason is not None
        # Either the stripe is short of shards or (k=2) the manifest and its
        # single replica died together — both are honest unrecoverability.
        assert "stripe" in reason or "manifest" in reason
