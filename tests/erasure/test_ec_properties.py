"""Property tests for the erasure-coded redundancy mode: random cluster
erasure patterns within the coverage bound must always decode exactly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DumpConfig, dump_output, restore_dataset
from repro.erasure.ec_dump import effective_geometry, group_structure
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64
N = 8
K = 3  # m = 2 parity shards per stripe


@pytest.fixture(scope="module")
def parity_cluster():
    cfg = DumpConfig(replication_factor=K, chunk_size=CS, f_threshold=4096,
                     redundancy="parity", stripe_data=4)
    cluster = Cluster(N)
    World(N).run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
    )
    return cluster


@given(st.sets(st.integers(0, N - 1), min_size=0, max_size=K - 1))
@settings(max_examples=25, deadline=None)
def test_any_within_bound_erasure_recovers(parity_cluster, victims):
    """Every subset of at most K-1 failed nodes leaves all N datasets
    restorable bit-exactly (chunks decoded where necessary)."""
    cluster = parity_cluster
    try:
        for v in victims:
            cluster.fail_node(v)
        for rank in range(N):
            restored, _report = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)
    finally:
        cluster.revive_all()


@given(
    st.integers(2, 40),  # world
    st.integers(1, 10),  # requested d
    st.integers(2, 6),  # K
)
@settings(max_examples=60, deadline=None)
def test_group_structure_properties(world, d_req, k):
    """Geometry invariants for any (world, d, K): full coverage, m holders
    per group, and members never hold their own group's parity."""
    d, m = effective_geometry(d_req, k, world)
    assert 1 <= d
    assert 0 <= m <= k - 1
    if m == 0:
        return
    groups = group_structure(world, d, m)
    covered = [p for members, _h in groups for p in members]
    assert covered == list(range(world))
    for members, holders in groups:
        assert len(holders) == m
        assert len(set(holders)) == m
        assert not set(members) & set(holders)
