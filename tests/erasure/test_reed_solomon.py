"""Reed-Solomon MDS property: any k of n shards reconstruct the data."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.reed_solomon import ReedSolomon


class TestEncode:
    def test_systematic_prefix(self):
        rs = ReedSolomon(6, 4)
        data = [bytes([i]) * 8 for i in range(4)]
        shards = rs.encode(data)
        assert shards[:4] == data
        assert len(shards) == 6

    def test_parity_differs_from_data(self):
        rs = ReedSolomon(5, 3)
        shards = rs.encode([b"aa", b"bb", b"cc"])
        assert shards[3] not in shards[:3]

    def test_wrong_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomon(4, 2).encode([b"a"])

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomon(4, 2).encode([b"aa", b"a"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomon(2, 3)
        with pytest.raises(ValueError):
            ReedSolomon(300, 4)

    def test_storage_overhead(self):
        assert ReedSolomon(6, 4).storage_overhead == pytest.approx(0.5)
        assert ReedSolomon(6, 4).parity_shards == 2


class TestDecode:
    def test_every_erasure_pattern_exhaustive(self):
        """RS(6,4): all C(6,4) survivor subsets must reconstruct exactly."""
        rs = ReedSolomon(6, 4)
        data = [bytes([10 + i, 20 + i, 30 + i]) for i in range(4)]
        shards = rs.encode(data)
        for keep in itertools.combinations(range(6), 4):
            available = {i: shards[i] for i in keep}
            assert rs.decode(available) == data, keep

    def test_too_few_shards_raises(self):
        rs = ReedSolomon(6, 4)
        shards = rs.encode([b"a", b"b", b"c", b"d"])
        with pytest.raises(ValueError, match="at least"):
            rs.decode({0: shards[0], 1: shards[1]})

    def test_all_data_shortcut(self):
        rs = ReedSolomon(6, 4)
        data = [b"w", b"x", b"y", b"z"]
        shards = rs.encode(data)
        assert rs.decode({i: shards[i] for i in range(4)}) == data

    def test_reconstruct_parity_shard(self):
        rs = ReedSolomon(5, 3)
        data = [b"abc", b"def", b"ghi"]
        shards = rs.encode(data)
        rebuilt = rs.reconstruct_shard(
            {0: shards[0], 2: shards[2], 4: shards[4]}, index=3
        )
        assert rebuilt == shards[3]

    def test_reconstruct_data_shard(self):
        rs = ReedSolomon(5, 3)
        shards = rs.encode([b"abc", b"def", b"ghi"])
        rebuilt = rs.reconstruct_shard(
            {1: shards[1], 3: shards[3], 4: shards[4]}, index=0
        )
        assert rebuilt == b"abc"

    @given(
        st.integers(1, 6),
        st.integers(0, 4),
        st.binary(min_size=1, max_size=32),
        st.data(),
    )
    @settings(max_examples=25)
    def test_roundtrip_property(self, k, parity, payload, data):
        n = k + parity
        rs = ReedSolomon(n, k)
        width = len(payload)
        shards_in = [
            bytes((b + i) % 256 for b in payload) for i in range(k)
        ]
        encoded = rs.encode(shards_in)
        keep = sorted(
            data.draw(
                st.sets(st.integers(0, n - 1), min_size=k, max_size=k)
            )
        )
        decoded = rs.decode({i: encoded[i] for i in keep})
        assert decoded == shards_in
