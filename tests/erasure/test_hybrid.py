"""Hybrid replication+EC policy: analytics and functional recovery."""

import pytest

from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.core.fingerprint import Fingerprinter
from repro.erasure.hybrid import HybridPolicy
from repro.sim import simulate_dump

CS = 256


class TestSummarize:
    def make_inputs(self, n=8, k=3):
        w = SyntheticWorkload(chunks_per_rank=30, chunk_size=CS, frac_global=0.4,
                              frac_zero=0.1)
        indices = w.build_indices(n, chunk_size=CS)
        cfg = DumpConfig(replication_factor=k, chunk_size=CS,
                         strategy=Strategy.COLL_DEDUP, f_threshold=10_000)
        result = simulate_dump(indices, cfg)
        return indices, result.view, k

    def test_parity_cheaper_than_topup(self):
        indices, view, k = self.make_inputs()
        policy = HybridPolicy(stripe_data=8, stripe_parity=2)
        summary = policy.summarize(indices, view, k)
        assert summary.short_chunks > 0
        assert summary.parity_bytes < summary.replication_topup_bytes
        assert 0 < summary.savings_fraction < 1

    def test_fully_replicated_needs_nothing(self):
        w = SyntheticWorkload(chunks_per_rank=10, chunk_size=CS, frac_global=1.0,
                              frac_zero=0.0, frac_local_dup=0.0)
        indices = w.build_indices(6, chunk_size=CS)
        cfg = DumpConfig(replication_factor=3, chunk_size=CS,
                         strategy=Strategy.COLL_DEDUP, f_threshold=10_000)
        view = simulate_dump(indices, cfg).view
        summary = HybridPolicy().summarize(indices, view, 3)
        assert summary.short_chunks == 0
        assert summary.replication_topup_bytes == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HybridPolicy(stripe_data=0)
        with pytest.raises(ValueError):
            HybridPolicy(stripe_parity=0)


class TestFunctionalRecovery:
    def chunks_of(self, rank, count=10):
        fpr = Fingerprinter("sha1")
        payloads = [bytes([rank, i]) * (CS // 2) for i in range(count)]
        return {fpr(p): p for p in payloads}

    def test_protect_and_recover_single_loss(self):
        policy = HybridPolicy(stripe_data=4, stripe_parity=2)
        chunks = self.chunks_of(1, count=7)
        sizes = {fp: len(p) for fp, p in chunks.items()}
        stripes = policy.protect_rank(chunks, CS)
        assert len(stripes) == 2  # ceil(7/4)
        victim_fp = stripes[0].fingerprints[2]
        surviving = {fp: p for fp, p in chunks.items() if fp != victim_fp}
        recovered = policy.recover_chunks(stripes[0], surviving, sizes)
        assert recovered == {victim_fp: chunks[victim_fp]}

    def test_recover_up_to_parity_losses(self):
        policy = HybridPolicy(stripe_data=4, stripe_parity=2)
        chunks = self.chunks_of(2, count=4)
        sizes = {fp: len(p) for fp, p in chunks.items()}
        (stripe,) = policy.protect_rank(chunks, CS)
        victims = stripe.fingerprints[:2]
        surviving = {fp: p for fp, p in chunks.items() if fp not in victims}
        recovered = policy.recover_chunks(stripe, surviving, sizes)
        assert set(recovered) == set(victims)
        for fp in victims:
            assert recovered[fp] == chunks[fp]

    def test_short_final_stripe_padded(self):
        policy = HybridPolicy(stripe_data=8, stripe_parity=1)
        chunks = self.chunks_of(3, count=3)  # one partial stripe
        sizes = {fp: len(p) for fp, p in chunks.items()}
        (stripe,) = policy.protect_rank(chunks, CS)
        victim = stripe.fingerprints[0]
        surviving = {fp: p for fp, p in chunks.items() if fp != victim}
        recovered = policy.recover_chunks(stripe, surviving, sizes)
        assert recovered[victim] == chunks[victim]

    def test_nothing_missing_returns_empty(self):
        policy = HybridPolicy(stripe_data=4, stripe_parity=1)
        chunks = self.chunks_of(4, count=4)
        sizes = {fp: len(p) for fp, p in chunks.items()}
        (stripe,) = policy.protect_rank(chunks, CS)
        assert policy.recover_chunks(stripe, chunks, sizes) == {}
