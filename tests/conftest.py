"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property tests fast and deterministic in CI while still exploring a
# meaningful space; the 'thorough' profile is available via
# HYPOTHESIS_PROFILE=thorough for long local runs.
settings.register_profile(
    "default",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile("default")


@pytest.fixture
def rng():
    return np.random.RandomState(1234)


def make_rank_dataset(rank: int, chunk_size: int = 64, n_unique: int = 5):
    """A small per-rank dataset mixing all redundancy classes (used by many
    dump/restore tests): globally shared, group shared, locally duplicated,
    zero pages and rank-unique chunks."""
    from repro.core.chunking import Dataset

    shared = b"G" * (chunk_size * 4)
    group = bytes([rank % 2 + 1]) * (chunk_size * 3)
    zeros = b"\x00" * (chunk_size * 2)
    local_dup = (bytes([200 + rank % 40]) * chunk_size) * 3
    unique = np.random.RandomState(1000 + rank).bytes(chunk_size * n_unique)
    return Dataset([shared, group, zeros, local_dup, unique])


@pytest.fixture
def rank_dataset_factory():
    return make_rank_dataset
