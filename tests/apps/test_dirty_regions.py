"""The workloads' dirty_regions hooks: shape, honesty, end-to-end caching."""

import numpy as np

from repro.apps.base import SegmentedWorkload
from repro.apps.cm1 import CM1
from repro.apps.hpccg import HPCCG
from repro.core.chunking import as_bytes_view
from repro.core.fingerprint import Fingerprinter
from repro.core.fpcache import FingerprintCache
from repro.core.local_dedup import local_dedup_batched

CS = 4096


class _NoHook(SegmentedWorkload):
    name = "nohook"

    def rank_segments(self, rank, n_ranks):
        return [(None, b"\x01" * 100)]


def check_hook_shape(workload, rank, n_ranks):
    segments = workload.rank_segments(rank, n_ranks)
    regions = workload.dirty_regions(rank, n_ranks)
    assert regions is not None
    assert len(regions) == len(segments)
    for (key, buf), segment_regions in zip(segments, regions):
        nbytes = len(as_bytes_view(buf))
        assert segment_regions is not None
        for start, end in segment_regions:
            assert 0 <= start <= end <= nbytes
    return segments, regions


class TestHookShapes:
    def test_base_default_is_unknown(self):
        assert _NoHook().dirty_regions(0, 4) is None

    def test_hpccg_regions_align_with_segments(self):
        w = HPCCG(nx=4, ny=4, nz=4, max_iterations=3)
        for rank in (0, 3):
            segments, regions = check_hook_shape(w, rank, 8)
            # The operator arrays and slack must be declared clean, the
            # solver vectors dirty.
            dirty_count = sum(1 for r in regions if r)
            assert dirty_count == 4  # x, r, p, Ap

    def test_cm1_regions_align_with_segments(self):
        w = CM1(nx=8, ny=8, nz=4, n_steps=2)
        n_ranks = 16
        active = next(
            r for r in range(n_ranks) if w.rank_intersects_vortex(r, n_ranks)
        )
        calm = next(
            r for r in range(n_ranks) if not w.rank_intersects_vortex(r, n_ranks)
        )
        _, active_regions = check_hook_shape(w, active, n_ranks)
        _, calm_regions = check_hook_shape(w, calm, n_ranks)
        assert any(r for r in active_regions)
        # Calm subdomains are bitwise constant: everything clean.
        assert all(r == [] for r in calm_regions)


class TestHookHonesty:
    """A segment declared clean must actually be bitwise stable across
    checkpoint constructions — the cache's correctness contract."""

    def _assert_clean_is_stable(self, workload, rank, n_ranks):
        first = [
            bytes(as_bytes_view(buf))
            for _k, buf in workload.rank_segments(rank, n_ranks)
        ]
        regions = workload.dirty_regions(rank, n_ranks)
        second = [
            bytes(as_bytes_view(buf))
            for _k, buf in workload.rank_segments(rank, n_ranks)
        ]
        for a, b, segment_regions in zip(first, second, regions):
            if segment_regions == []:
                assert a == b

    def test_hpccg_clean_claims(self):
        w = HPCCG(nx=4, ny=4, nz=4, max_iterations=2)
        self._assert_clean_is_stable(w, 0, 8)

    def test_cm1_clean_claims(self):
        w = CM1(nx=8, ny=8, nz=4, n_steps=2)
        for rank in range(4):
            self._assert_clean_is_stable(w, rank, 4)


class TestEndToEndCaching:
    def test_hpccg_repeated_dump_skips_clean_chunks(self):
        w = HPCCG(nx=4, ny=4, nz=4, max_iterations=2)
        rank, n_ranks = 0, 8
        ds = w.build_dataset(rank, n_ranks)
        cache = FingerprintCache(CS)
        cold = local_dedup_batched(ds, Fingerprinter(), CS, cache=cache)

        ds2 = w.build_dataset(rank, n_ranks)
        fpr = Fingerprinter()
        warm = local_dedup_batched(
            ds2, fpr, CS, cache=cache,
            dirty_regions=w.dirty_regions(rank, n_ranks),
        )
        assert warm.order == cold.order
        assert list(warm.unique.items()) == list(cold.unique.items())
        stats = cache.take_stats()
        assert stats.hits > 0
        assert fpr.hashed_bytes < ds.nbytes  # clean chunks were skipped
