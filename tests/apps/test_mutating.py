"""MutatingWorkload: the chain layer's epoch-evolving oracle."""

import pytest

from repro.apps.mutating import MutatingWorkload
from repro.chain.node import chunk_slices


def test_deterministic_per_epoch():
    a = MutatingWorkload(seed=5)
    b = MutatingWorkload(seed=5)
    a.advance(3)
    b.advance(3)
    for rank in range(3):
        assert a.build_dataset(rank, 3) == b.build_dataset(rank, 3)


def test_at_epoch_is_time_travel_oracle():
    workload = MutatingWorkload(seed=5)
    snapshots = [workload.at_epoch(0).build_dataset(0, 2).to_bytes()]
    for _ in range(4):
        workload.advance()
        snapshots.append(workload.build_dataset(0, 2).to_bytes())
    for epoch, want in enumerate(snapshots):
        assert workload.at_epoch(epoch).build_dataset(0, 2).to_bytes() == want
    assert len(set(snapshots)) == len(snapshots)  # every epoch differs


def test_incremental_materialization_matches_from_scratch():
    """The in-place state cache (advance + dump per epoch, like a real
    application) must produce byte-identical content to a cold replay of
    all mutations from the base — including after an epoch rewind, which
    forces the cold path on a warm instance."""
    warm = MutatingWorkload(seed=5)
    for epoch in range(5):
        warm.epoch = epoch
        for rank in range(2):
            incremental = warm.build_dataset(rank, 2).to_bytes()
            cold = warm.at_epoch(epoch).build_dataset(rank, 2).to_bytes()
            assert incremental == cold, (epoch, rank)
    warm.epoch = 2  # rewind: the cache is ahead and must be discarded
    assert (
        warm.build_dataset(0, 2).to_bytes()
        == warm.at_epoch(2).build_dataset(0, 2).to_bytes()
    )


def test_dirty_regions_cover_exactly_the_mutated_chunks():
    workload = MutatingWorkload(seed=8, dirty_frac=0.1)
    before = workload.build_dataset(1, 2)
    workload.advance()
    after = workload.build_dataset(1, 2)
    regions = workload.dirty_regions(1, 2)
    assert regions is not None
    slices = chunk_slices(workload.segment_lengths, workload.chunk_size)
    declared = {
        (seg, start, end)
        for seg, seg_regions in enumerate(regions)
        for start, end in seg_regions
    }
    for index, (seg, start, length) in enumerate(slices):
        chunk_before = bytes(before.segment(seg))[start:start + length]
        chunk_after = bytes(after.segment(seg))[start:start + length]
        if chunk_before != chunk_after:
            assert (seg, start, start + length) in declared, (seg, start)


def test_epoch_zero_regions_unknown():
    assert MutatingWorkload(seed=1).dirty_regions(0, 2) is None


def test_geometry_constant_across_epochs():
    workload = MutatingWorkload(seed=2)
    base = workload.build_dataset(0, 2).segment_lengths
    workload.advance(5)
    assert workload.build_dataset(0, 2).segment_lengths == base


def test_shared_base_dedups_across_ranks_at_epoch_zero():
    workload = MutatingWorkload(seed=3, shared_base=True)
    seg0 = [bytes(workload.build_dataset(r, 4).segment(0)) for r in range(4)]
    assert len(set(seg0)) == 1
    private = MutatingWorkload(seed=3, shared_base=False)
    seg0 = [bytes(private.build_dataset(r, 4).segment(0)) for r in range(4)]
    assert len(set(seg0)) == 4


def test_at_least_one_chunk_mutates_per_epoch():
    workload = MutatingWorkload(seed=4, dirty_frac=0.0001)
    before = workload.build_dataset(0, 2).to_bytes()
    workload.advance()
    assert workload.build_dataset(0, 2).to_bytes() != before


def test_validation():
    with pytest.raises(ValueError):
        MutatingWorkload(dirty_frac=0.0)
    with pytest.raises(ValueError):
        MutatingWorkload(chunk_size=0)
    with pytest.raises(ValueError):
        MutatingWorkload().at_epoch(-1)
    with pytest.raises(ValueError):
        MutatingWorkload().advance(-1)
