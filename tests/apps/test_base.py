"""Workload base class: fingerprint caching honesty and process grids."""

import numpy as np
import pytest

from repro.apps.base import SegmentedWorkload, process_grid_2d, process_grid_3d
from repro.core.fingerprint import Fingerprinter
from repro.core.local_dedup import local_dedup


class TwoClassWorkload(SegmentedWorkload):
    """Half the state shared, half rank-unique — with a hash-call counter
    to verify the cache only skips hashing when keys match."""

    name = "two-class"

    def rank_segments(self, rank, n_ranks):
        shared = b"S" * 1024
        unique = bytes([rank]) * 1024
        return [(("shared",), shared), ((("rank", rank)), unique)]


class TestBuildIndices:
    def test_indices_match_uncached_local_dedup(self):
        w = TwoClassWorkload()
        n = 5
        indices = w.build_indices(n, chunk_size=128)
        for rank in range(n):
            expected = local_dedup(
                w.build_dataset(rank, n), Fingerprinter("sha1"), 128
            )
            assert indices[rank].order == expected.order
            assert indices[rank].counts == expected.counts
            assert indices[rank].chunk_sizes == expected.chunk_sizes

    def test_shared_segment_hashed_once(self):
        calls = []

        class Counting(TwoClassWorkload):
            def rank_segments(self, rank, n_ranks):
                calls.append(rank)
                return super().rank_segments(rank, n_ranks)

        w = Counting()
        w.build_indices(4, chunk_size=128)
        assert calls == [0, 1, 2, 3]  # segments listed once per rank

    def test_per_rank_bytes(self):
        w = TwoClassWorkload()
        assert w.per_rank_bytes(4) == 2048

    def test_none_key_always_hashed(self):
        class NoneKey(SegmentedWorkload):
            name = "nk"

            def rank_segments(self, rank, n_ranks):
                return [(None, bytes([rank]) * 256)]

        indices = NoneKey().build_indices(3, chunk_size=128)
        fps = [idx.order[0] for idx in indices]
        assert len(set(fps)) == 3

    def test_alternative_hash(self):
        w = TwoClassWorkload()
        sha = w.build_indices(2, chunk_size=128, hash_name="sha1")
        blake = w.build_indices(2, chunk_size=128, hash_name="blake2b")
        assert len(sha[0].order[0]) == 20
        assert len(blake[0].order[0]) == 16


class TestProcessGrids:
    @pytest.mark.parametrize("n", [1, 2, 6, 12, 64, 120, 196, 264, 408])
    def test_grid_2d_factors(self, n):
        px, py = process_grid_2d(n)
        assert px * py == n
        assert px <= py

    @pytest.mark.parametrize("n", [1, 8, 27, 64, 196, 408])
    def test_grid_3d_factors(self, n):
        px, py, pz = process_grid_3d(n)
        assert px * py * pz == n

    def test_grid_3d_prefers_cubes(self):
        assert sorted(process_grid_3d(64)) == [4, 4, 4]
        assert sorted(process_grid_3d(27)) == [3, 3, 3]

    def test_grid_2d_prefers_squares(self):
        assert sorted(process_grid_2d(64)) == [8, 8]
        assert sorted(process_grid_2d(12)) == [3, 4]
