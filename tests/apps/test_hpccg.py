"""HPCCG mini-app: solver correctness and checkpoint redundancy structure."""

import numpy as np
import pytest

from repro.apps.hpccg import HPCCG, HPCCGRankSolver
from repro.core import DumpConfig, Strategy
from repro.sim import compute_metrics, simulate_dump


class TestSolver:
    def test_matrix_structure_interior_rows(self):
        s = HPCCGRankSolver(5, 5, 5)
        # A fully interior row has the 27.0 diagonal and 26 off-diagonals.
        interior = 2 + 2 * 5 + 2 * 25  # linear index of (2,2,2)
        row = s.values[interior]
        assert np.count_nonzero(row == 27.0) == 1
        assert np.count_nonzero(row == -1.0) == 26

    def test_global_boundary_pads_rows(self):
        s = HPCCGRankSolver(4, 4, 4, boundary=(True,) * 6)
        corner = 0
        # Corner of an all-boundary block: 7 neighbours + diagonal.
        assert np.count_nonzero(s.values[corner]) == 8
        assert s.n_ghosts == 0

    def test_interior_block_has_ghosts(self):
        s = HPCCGRankSolver(4, 4, 4, boundary=(False,) * 6)
        assert s.n_ghosts > 0
        # Every row of a fully interior block has all 27 entries.
        assert np.count_nonzero(s.values) == s.nrows * 27
        assert s.indices.max() == s.nrows + s.n_ghosts - 1

    def test_matvec_matches_scipy(self):
        import scipy.sparse as sp

        s = HPCCGRankSolver(4, 3, 5, boundary=(True, False, True, False, True, True))
        n_cols = s.nrows + s.n_ghosts
        rows = np.repeat(np.arange(s.nrows), 27)
        a = sp.csr_matrix(
            (s.values.ravel(), (rows, s.indices.ravel())), shape=(s.nrows, n_cols)
        )
        vec = np.random.RandomState(0).standard_normal(s.nrows)
        extended = np.concatenate([vec, np.zeros(s.n_ghosts)])
        assert np.allclose(s.matvec(vec), a @ extended)

    def test_cg_converges(self):
        s = HPCCGRankSolver(6, 6, 6)
        initial = s.residual_norm()
        s.iterate(60)
        assert s.residual_norm() < initial * 1e-8

    def test_all_boundary_block_solution_is_ones(self):
        """With no ghosts, b is the exact row sum for x*=1."""
        s = HPCCGRankSolver(5, 5, 5, boundary=(True,) * 6)
        s.iterate(80)
        assert np.allclose(s.x, 1.0, atol=1e-6)

    def test_deterministic(self):
        a = HPCCGRankSolver(4, 4, 4)
        b = HPCCGRankSolver(4, 4, 4)
        a.iterate(10)
        b.iterate(10)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.values, b.values)

    def test_solver_arrays_complete(self):
        s = HPCCGRankSolver(3, 3, 3)
        arrays = s.solver_arrays()
        assert set(arrays) == {"values", "indices", "b", "x", "r", "p", "Ap"}


class TestWorkload:
    def test_placement_boundary_classes(self):
        app = HPCCG(nx=4)
        n = 27  # 3x3x3 grid
        classes = {app.placement(r, n).boundary for r in range(n)}
        assert len(classes) == 27  # corner/edge/face/interior all distinct
        center = app.placement(13, n)
        assert center.boundary == (False,) * 6

    def test_same_class_ranks_share_state_bytes(self):
        app = HPCCG(nx=4)
        n = 64  # 4x4x4: interior ranks exist
        interiors = [
            r for r in range(n) if app.placement(r, n).boundary == (False,) * 6
        ]
        assert len(interiors) == 8
        seg_a = dict_of(app.rank_segments(interiors[0], n))
        seg_b = dict_of(app.rank_segments(interiors[1], n))
        for name in ("values", "indices", "x"):
            assert np.array_equal(seg_a[name], seg_b[name])
        # ... but their geometry differs (rank-unique)
        assert not np.array_equal(seg_a["geom"], seg_b["geom"])

    def test_geometry_is_rank_unique(self):
        app = HPCCG(nx=4)
        geoms = [dict_of(app.rank_segments(r, 8))["geom"].tobytes() for r in range(8)]
        assert len(set(geoms)) == 8

    def test_slack_fraction_sizing(self):
        app = HPCCG(nx=4, slack_fraction=0.5)
        segs = app.rank_segments(0, 8)
        slack = next(buf for key, buf in segs if key[0] == "hpccg-slack")
        live = sum(
            len(memoryview(b).cast("B")) if not hasattr(b, "nbytes") else b.nbytes
            for key, b in segs
            if key[0] != "hpccg-slack"
        )
        assert len(slack) == pytest.approx(live, rel=0.01)

    def test_no_slack_option(self):
        app = HPCCG(nx=4, slack_fraction=0.0)
        assert all(key[0] != "hpccg-slack" for key, _ in app.rank_segments(0, 8))

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            HPCCG(slack_fraction=1.0)

    def test_scale_factor(self):
        app = HPCCG(nx=8)
        assert app.scale_factor(8) == pytest.approx(
            1.5e9 / app.per_rank_bytes(8)
        )


class TestRedundancyCharacter:
    """The dedup ratios must land in the paper's measured bands."""

    @pytest.fixture(scope="class")
    def metrics(self):
        app = HPCCG(nx=12)
        n = 64
        indices = app.build_indices(n)
        out = {}
        for strategy in Strategy:
            cfg = DumpConfig(replication_factor=3, strategy=strategy,
                             f_threshold=1 << 17)
            out[strategy] = compute_metrics(indices, simulate_dump(indices, cfg))
        return out

    def test_local_dedup_band(self, metrics):
        frac = metrics[Strategy.LOCAL_DEDUP].unique_fraction
        assert 0.15 < frac < 0.55  # paper: 33% at 408 ranks

    def test_coll_dedup_band(self, metrics):
        frac = metrics[Strategy.COLL_DEDUP].unique_fraction
        assert frac < 0.30
        assert frac < metrics[Strategy.LOCAL_DEDUP].unique_fraction

    def test_ordering(self, metrics):
        assert (
            metrics[Strategy.COLL_DEDUP].unique_content_bytes
            < metrics[Strategy.LOCAL_DEDUP].unique_content_bytes
            < metrics[Strategy.NO_DEDUP].unique_content_bytes
        )


def dict_of(segments):
    out = {}
    for key, buf in segments:
        if key[0] == "hpccg-geom":
            out["geom"] = buf
        elif key[0] == "hpccg-slack":
            out["slack"] = buf
        else:
            out[key[-1]] = buf
    return out
