"""CM1 mini-model: vortex dynamics and checkpoint redundancy structure."""

import numpy as np
import pytest

from repro.apps.cm1 import CM1, CM1RankModel, VortexSpec
from repro.core import DumpConfig, Strategy
from repro.sim import compute_metrics, simulate_dump


class TestRankModel:
    def test_calm_subdomain_stays_zero(self):
        m = CM1RankModel(8, 8, 4, origin=(0, 0), vortex=None)
        m.step(20)
        assert not m.active
        for arr in m.state_arrays().values():
            assert not arr.any()

    def test_vortex_initializes_fields(self):
        vortex = VortexSpec(center_x=8, center_y=8, radius=6)
        m = CM1RankModel(16, 16, 4, origin=(0, 0), vortex=vortex)
        assert m.active
        assert m.fields["u"].any() and m.fields["v"].any()
        assert m.fields["theta"].max() > 0

    def test_vortex_outside_subdomain_is_noop(self):
        vortex = VortexSpec(center_x=100, center_y=100, radius=5)
        m = CM1RankModel(8, 8, 4, origin=(0, 0), vortex=vortex)
        assert not m.active

    def test_stepping_changes_active_fields(self):
        vortex = VortexSpec(center_x=8, center_y=8, radius=6)
        m = CM1RankModel(16, 16, 4, origin=(0, 0), vortex=vortex)
        before = m.fields["theta"].copy()
        m.step(10)
        assert m.steps_done == 10
        assert not np.array_equal(before, m.fields["theta"])

    def test_diffusion_spreads_but_preserves_sign(self):
        vortex = VortexSpec(center_x=8, center_y=8, radius=4, theta_anomaly=5.0)
        m = CM1RankModel(16, 16, 2, origin=(0, 0), vortex=vortex)
        m.step(15)
        assert m.fields["theta"].max() < 5.0  # diffusion decays the peak
        assert m.fields["theta"].max() > 0

    def test_deterministic(self):
        vortex = VortexSpec(center_x=5, center_y=5, radius=4)
        a = CM1RankModel(12, 12, 3, origin=(0, 0), vortex=vortex)
        b = CM1RankModel(12, 12, 3, origin=(0, 0), vortex=vortex)
        a.step(7)
        b.step(7)
        assert np.array_equal(a.fields["u"], b.fields["u"])

    def test_global_coordinates_used(self):
        """Two ranks covering different parts of the same vortex see
        different slices of it."""
        vortex = VortexSpec(center_x=16, center_y=8, radius=10)
        left = CM1RankModel(16, 16, 2, origin=(0, 0), vortex=vortex)
        right = CM1RankModel(16, 16, 2, origin=(16, 0), vortex=vortex)
        assert left.active and right.active
        assert not np.array_equal(left.fields["u"], right.fields["u"])


class TestWorkload:
    def test_tables_identical_across_ranks(self):
        app = CM1(nx=8, ny=8, nz=4)
        segs0 = app.rank_segments(0, 16)
        segs5 = app.rank_segments(5, 16)
        assert segs0[0][0] == segs5[0][0]  # same cache key
        assert np.array_equal(segs0[0][1], segs5[0][1])

    def test_table_fraction_sizing(self):
        app = CM1(nx=8, ny=8, nz=4, table_fraction=0.25)
        total = app.per_rank_bytes(16)
        tables = app.tables().nbytes
        assert tables / total == pytest.approx(0.25, abs=0.02)

    def test_vortex_scales_with_domain(self):
        app = CM1(nx=8, ny=8, nz=2)
        small = app.vortex(16).radius
        large = app.vortex(64).radius
        assert large == pytest.approx(2 * small)

    def test_active_fraction_roughly_constant_weak_scaling(self):
        app = CM1(nx=8, ny=8, nz=2, vortex_radius_frac=0.2)
        fracs = [app.active_rank_count(n) / n for n in (16, 64, 144)]
        assert max(fracs) < 4 * min(fracs) + 0.1

    def test_active_ranks_have_unique_content(self):
        app = CM1(nx=8, ny=8, nz=4)
        n = 64
        active = [r for r in range(n) if app.rank_intersects_vortex(r, n)]
        assert len(active) >= 2
        s0 = app.rank_segments(active[0], n)
        s1 = app.rank_segments(active[1], n)
        u0 = next(b for k, b in s0 if k[-1] == "u")
        u1 = next(b for k, b in s1 if k[-1] == "u")
        assert not np.array_equal(u0, u1)

    def test_calm_ranks_share_cache_key(self):
        app = CM1(nx=8, ny=8, nz=4)
        n = 64
        calm = [r for r in range(n) if not app.rank_intersects_vortex(r, n)]
        keys0 = [k for k, _ in app.rank_segments(calm[0], n)]
        keys1 = [k for k, _ in app.rank_segments(calm[1], n)]
        assert keys0 == keys1


class TestRedundancyCharacter:
    @pytest.fixture(scope="class")
    def metrics(self):
        app = CM1(nx=16, ny=16, nz=8, vortex_radius_frac=0.12)
        n = 64
        indices = app.build_indices(n)
        out = {}
        for strategy in Strategy:
            cfg = DumpConfig(replication_factor=3, strategy=strategy,
                             f_threshold=1 << 17)
            out[strategy] = compute_metrics(indices, simulate_dump(indices, cfg))
        return out

    def test_local_band(self, metrics):
        frac = metrics[Strategy.LOCAL_DEDUP].unique_fraction
        assert 0.15 < frac < 0.55  # paper: 30%

    def test_coll_band(self, metrics):
        frac = metrics[Strategy.COLL_DEDUP].unique_fraction
        assert frac < 0.20  # paper: 5%
        assert frac < metrics[Strategy.LOCAL_DEDUP].unique_fraction / 2

    def test_ordering(self, metrics):
        assert (
            metrics[Strategy.COLL_DEDUP].unique_content_bytes
            < metrics[Strategy.LOCAL_DEDUP].unique_content_bytes
            < metrics[Strategy.NO_DEDUP].unique_content_bytes
        )


class TestLongRunStability:
    def test_stepping_stays_bounded(self):
        """The upwind+diffusion scheme must not blow up over a long run
        (dt, diffusivity and steering defaults are within the stable CFL
        region by construction)."""
        vortex = VortexSpec(center_x=12, center_y=12, radius=8)
        model = CM1RankModel(24, 24, 6, origin=(0, 0), vortex=vortex)
        peak0 = max(abs(model.fields[f]).max() for f in model.FIELDS)
        model.step(200)
        peak = max(abs(model.fields[f]).max() for f in model.FIELDS)
        assert np.isfinite(peak)
        assert peak <= peak0 * 1.5  # dissipative, not explosive
