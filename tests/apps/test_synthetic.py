"""Synthetic workload generator: exact redundancy control."""

import pytest

from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.core.fingerprint import Fingerprinter
from repro.core.local_dedup import local_dedup
from repro.sim import simulate_dump

CS = 256


class TestComposition:
    def test_class_counts_sum(self):
        w = SyntheticWorkload(chunks_per_rank=100, frac_global=0.3, frac_group=0.1,
                              frac_zero=0.1, frac_local_dup=0.2)
        counts = w.class_counts()
        assert sum(counts.values()) == 100
        assert counts["global"] == 30
        assert counts["unique"] == 30

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(frac_global=0.9, frac_zero=0.3)
        with pytest.raises(ValueError):
            SyntheticWorkload(frac_global=-0.1)
        with pytest.raises(ValueError):
            SyntheticWorkload(group_size=0)

    def test_per_rank_size_exact(self):
        w = SyntheticWorkload(chunks_per_rank=64, chunk_size=CS)
        assert w.per_rank_bytes(4) == 64 * CS

    def test_deterministic_across_instances(self):
        a = SyntheticWorkload(chunks_per_rank=16, chunk_size=CS, seed=3)
        b = SyntheticWorkload(chunks_per_rank=16, chunk_size=CS, seed=3)
        assert a.build_dataset(2, 4).to_bytes() == b.build_dataset(2, 4).to_bytes()

    def test_seed_changes_content(self):
        a = SyntheticWorkload(chunks_per_rank=16, chunk_size=CS, seed=1)
        b = SyntheticWorkload(chunks_per_rank=16, chunk_size=CS, seed=2)
        assert a.build_dataset(0, 4).to_bytes() != b.build_dataset(0, 4).to_bytes()


class TestExpectedRedundancy:
    def test_local_unique_prediction_exact(self):
        w = SyntheticWorkload(
            chunks_per_rank=50, chunk_size=CS, frac_global=0.2, frac_group=0.1,
            frac_zero=0.1, frac_local_dup=0.2, local_dup_degree=5,
        )
        idx = local_dedup(w.build_dataset(3, 8), Fingerprinter("sha1"), CS)
        assert idx.unique_chunks == w.expected_local_unique_chunks()

    def test_global_distinct_prediction_exact(self):
        w = SyntheticWorkload(
            chunks_per_rank=50, chunk_size=CS, frac_global=0.2, frac_group=0.2,
            group_size=3, frac_zero=0.1, frac_local_dup=0.2,
        )
        n = 9
        indices = w.build_indices(n, chunk_size=CS)
        distinct = set()
        for idx in indices:
            distinct.update(idx.counts)
        assert len(distinct) == w.expected_global_distinct_chunks(n)

    def test_group_sharing(self):
        w = SyntheticWorkload(chunks_per_rank=20, chunk_size=CS, frac_group=0.5,
                              group_size=2, frac_global=0.0, frac_zero=0.0,
                              frac_local_dup=0.0)
        i0 = w.build_indices(4, chunk_size=CS)
        group_fps_0 = set(i0[0].counts) & set(i0[1].counts)
        group_fps_2 = set(i0[2].counts) & set(i0[3].counts)
        assert len(group_fps_0) == 10
        assert not (group_fps_0 & group_fps_2)

    def test_zero_chunks_shared_everywhere(self):
        w = SyntheticWorkload(chunks_per_rank=10, chunk_size=CS, frac_zero=0.3,
                              frac_global=0.0, frac_local_dup=0.0)
        indices = w.build_indices(5, chunk_size=CS)
        zero_fp = Fingerprinter("sha1")(b"\x00" * CS)
        for idx in indices:
            assert idx.counts[zero_fp] == 3


class TestDedupPipelineIntegration:
    def test_all_global_dedups_to_k_copies(self):
        w = SyntheticWorkload(chunks_per_rank=20, chunk_size=CS, frac_global=1.0,
                              frac_zero=0.0, frac_local_dup=0.0)
        indices = w.build_indices(10, chunk_size=CS)
        cfg = DumpConfig(replication_factor=3, chunk_size=CS,
                         strategy=Strategy.COLL_DEDUP, f_threshold=10_000)
        result = simulate_dump(indices, cfg)
        # 20 distinct chunks, each stored on exactly 3 of 10 ranks; zero
        # network traffic (natural replicas suffice).
        assert sum(r.sent_chunks for r in result.reports) == 0
        assert sum(r.stored_chunks for r in result.reports) == 60
