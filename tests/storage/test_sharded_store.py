"""Sharded chunk store: byte-for-byte equivalence with the flat store.

The sharded store is a drop-in behind the same API, so the property that
matters is *observational equivalence*: any interleaving of commits,
increfs, GC discards and delta replays must leave a sharded store (at any
shard count) indistinguishable from a flat store fed the same sequence —
same payloads, refcounts, byte accounting and dedup stats.
"""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.storage import (
    ChunkStore,
    ShardedChunkStore,
    ShardedManifestIndex,
    make_chunk_store,
)
from repro.storage.local_store import StorageError

PAYLOADS = [bytes([i]) * (16 + 8 * i) for i in range(8)]
FPS = [hashlib.sha1(p).digest() for p in PAYLOADS]

SHARD_COUNTS = [1, 2, 8, 16]

_op = st.one_of(
    st.tuples(st.just("put"), st.integers(0, 7)),
    st.tuples(st.just("incref"), st.integers(0, 7), st.integers(1, 3)),
    st.tuples(
        st.just("put_many"),
        st.lists(st.integers(0, 7), min_size=1, max_size=5),
    ),
    st.tuples(st.just("discard"), st.integers(0, 7)),
    st.tuples(st.just("mark"),),
)


def apply_op(store, op):
    if op[0] == "put":
        store.put(FPS[op[1]], PAYLOADS[op[1]])
    elif op[0] == "incref":
        store.put_counted([(FPS[op[1]], PAYLOADS[op[1]], op[2])])
    elif op[0] == "put_many":
        store.put_many([(FPS[i], PAYLOADS[i]) for i in op[1]])
    elif op[0] == "discard":
        store.discard(FPS[op[1]])
    elif op[0] == "mark":
        store.mark()


def observable(store):
    """Everything a caller can see through the store API."""
    return {
        "chunks": sorted(
            (fp, store.refcount(fp), store.get(fp), store.nbytes_of(fp))
            for fp in store.fingerprints()
        ),
        "chunk_count": store.chunk_count,
        "logical": store.logical_bytes,
        "physical": store.physical_bytes,
        "puts": store.put_count,
        "stats": {
            k: v
            for k, v in store.store_stats().items()
            if k not in ("shard_count", "shard_chunks", "shard_skew")
        },
    }


class TestShardedEquivalence:
    @given(
        ops=st.lists(_op, max_size=30),
        shard_count=st.sampled_from(SHARD_COUNTS),
        dedup=st.booleans(),
    )
    def test_any_interleaving_matches_flat_store(
        self, ops, shard_count, dedup
    ):
        flat = ChunkStore(dedup=dedup)
        sharded = ShardedChunkStore(shard_count=shard_count, dedup=dedup)
        for op in ops:
            apply_op(flat, op)
            apply_op(sharded, op)
        assert observable(flat) == observable(sharded)

    @given(
        ops=st.lists(_op, max_size=30),
        shard_count=st.sampled_from(SHARD_COUNTS),
    )
    def test_delta_replay_crosses_layouts(self, ops, shard_count):
        """A delta collected from either layout replays onto either layout:
        the merge-back path must not care how the source or target shards.

        Deltas are additive by contract (stores are append-only during a
        dump epoch; GC runs between epochs), so discard and re-mark ops are
        filtered to keep each case a single all-put epoch.
        """
        flat = ChunkStore()
        sharded = ShardedChunkStore(shard_count=shard_count)
        flat.mark()
        sharded.mark()
        for op in ops:
            if op[0] in ("mark", "discard"):
                continue
            apply_op(flat, op)
            apply_op(sharded, op)
        flat_delta = flat.collect_delta()
        sharded_delta = sharded.collect_delta()

        targets = {
            "flat<-sharded": ChunkStore(),
            "sharded<-flat": ShardedChunkStore(shard_count=shard_count),
            "sharded<-sharded": ShardedChunkStore(shard_count=shard_count),
        }
        targets["flat<-sharded"].apply_delta(sharded_delta)
        targets["sharded<-flat"].apply_delta(flat_delta)
        targets["sharded<-sharded"].apply_delta(sharded_delta)
        want = observable(flat)
        for label, target in targets.items():
            assert observable(target) == want, label


class TestShardedStore:
    def test_routing_is_stable_and_total(self):
        store = ShardedChunkStore(shard_count=8)
        for fp in FPS:
            assert store.shard_of(fp) == fp[0] % 8
        for fp, payload in zip(FPS, PAYLOADS):
            store.put(fp, payload)
        assert sorted(store.fingerprints()) == sorted(FPS)
        assert store.chunk_count == len(FPS)

    def test_store_stats_reports_shard_shape(self):
        store = ShardedChunkStore(shard_count=4)
        store.put_counted([(fp, p, 2) for fp, p in zip(FPS, PAYLOADS)])
        stats = store.store_stats()
        assert stats["shard_count"] == 4
        assert len(stats["shard_chunks"]) == 4
        assert sum(stats["shard_chunks"]) == len(FPS)
        assert stats["chunks"] == len(FPS)
        assert stats["shard_skew"] >= 1.0
        assert 0.0 <= stats["dedup_ratio"] <= 1.0

    def test_clear_empties_every_shard(self):
        store = ShardedChunkStore(shard_count=4)
        for fp, payload in zip(FPS, PAYLOADS):
            store.put(fp, payload)
        store.clear()
        assert store.chunk_count == 0
        assert store.logical_bytes == 0
        assert store.physical_bytes == 0

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardedChunkStore(shard_count=0)

    def test_make_chunk_store_picks_layout(self):
        assert isinstance(make_chunk_store(shard_count=1), ChunkStore)
        assert isinstance(
            make_chunk_store(shard_count=2), ShardedChunkStore
        )


class TestShardedManifestIndex:
    def test_mapping_protocol(self):
        index = ShardedManifestIndex(shard_count=4)
        keys = [(rank, dump) for rank in range(3) for dump in range(3)]
        for i, key in enumerate(keys):
            index[key] = b"m%d" % i
        assert len(index) == len(keys)
        assert sorted(index.keys()) == sorted(keys)
        assert index[(1, 1)] == b"m4"
        del index[(0, 0)]
        assert (0, 0) not in index
        assert len(index) == len(keys) - 1
        with pytest.raises(KeyError):
            index[(0, 0)]


class TestShardedBatchedReads:
    @pytest.mark.parametrize("shard_count", [1, 4, 8])
    def test_scatter_gather_preserves_request_order(self, shard_count):
        store = ShardedChunkStore(shard_count=shard_count)
        for fp, payload in zip(FPS, PAYLOADS):
            store.put(fp, payload)
        # Request order deliberately interleaves shards and repeats.
        fps = [FPS[3], FPS[0], FPS[3], FPS[-1], FPS[1]]
        assert store.get_many(fps) == [store.get(f) for f in fps]
        probe = fps + [b"\xff" * 20]
        assert store.has_many(probe) == [store.has(f) for f in probe]

    def test_get_many_missing_raises(self):
        store = ShardedChunkStore(shard_count=4)
        store.put(FPS[0], PAYLOADS[0])
        with pytest.raises(StorageError, match="not in store"):
            store.get_many([FPS[0], b"\xfe" * 20])
