"""Failure injection and recoverability audits."""

import pytest

from repro.core import DumpConfig, Strategy, dump_output
from repro.simmpi import World
from repro.storage import Cluster, FailureInjector
from repro.storage.manifest import Manifest

from tests.conftest import make_rank_dataset


def dumped_cluster(n, k=3, strategy=Strategy.COLL_DEDUP):
    cfg = DumpConfig(replication_factor=k, chunk_size=64, strategy=strategy,
                     f_threshold=4096)
    cluster = Cluster(n)
    World(n).run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
    )
    return cluster


class TestAudit:
    def test_no_failures_all_recoverable(self):
        cluster = dumped_cluster(5)
        report = FailureInjector(cluster).audit(dump_id=0)
        assert report.all_recoverable
        assert report.recoverable_ranks == list(range(5))

    def test_k_minus_1_failures_recoverable(self):
        cluster = dumped_cluster(6, k=3)
        injector = FailureInjector(cluster)
        injector.fail_nodes([0, 4])
        report = injector.audit(dump_id=0)
        assert report.all_recoverable
        assert report.failed_nodes == [0, 4]

    def test_unprotected_data_detected(self):
        cluster = dumped_cluster(4, k=1)
        injector = FailureInjector(cluster)
        injector.fail_nodes([2])
        report = injector.audit(dump_id=0)
        assert 2 in report.lost_ranks

    def test_lost_manifest_flagged(self):
        cluster = Cluster(2)
        m = Manifest(rank=0, dump_id=0, segment_lengths=[1],
                     fingerprints=[b"\x01" * 20])
        cluster.nodes[0].put_manifest(m)
        cluster.nodes[0].chunks.put(b"\x01" * 20, b"x")
        injector = FailureInjector(cluster)
        injector.fail_nodes([0])
        report = injector.audit(dump_id=0, ranks=[0])
        assert report.lost_ranks == [0]
        assert report.missing_chunks[0] == -1


class TestRandomFailures:
    def test_seeded_choice_is_deterministic(self):
        c1, c2 = dumped_cluster(8), dumped_cluster(8)
        v1 = FailureInjector(c1, seed=42).fail_random_nodes(2)
        v2 = FailureInjector(c2, seed=42).fail_random_nodes(2)
        assert v1 == v2

    def test_victims_are_distinct_and_marked(self):
        cluster = dumped_cluster(8)
        victims = FailureInjector(cluster, seed=1).fail_random_nodes(3)
        assert len(set(victims)) == 3
        for v in victims:
            assert not cluster.nodes[v].alive

    def test_too_many_failures_rejected(self):
        cluster = dumped_cluster(3)
        with pytest.raises(ValueError):
            FailureInjector(cluster).fail_random_nodes(4)

    def test_any_k_minus_1_random_failures_survivable(self):
        """Monte-Carlo over seeds: K=3 must survive any 2 failures."""
        for seed in range(5):
            cluster = dumped_cluster(7, k=3)
            injector = FailureInjector(cluster, seed=seed)
            injector.fail_random_nodes(2)
            assert injector.audit(dump_id=0).all_recoverable


class TestParityAudit:
    def test_audit_consults_parity_stripes(self):
        """A chunk whose only replica died but whose stripe still decodes is
        recoverable, and the audit must say so."""
        n, k = 7, 3
        cfg = DumpConfig(replication_factor=k, chunk_size=64, f_threshold=4096,
                         redundancy="parity", stripe_data=4)
        cluster = Cluster(n)
        World(n).run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg,
                                     cluster)
        )
        injector = FailureInjector(cluster, seed=3)
        injector.fail_random_nodes(k - 1)
        assert injector.audit(dump_id=0).all_recoverable


class TestAuditEdgeCases:
    def test_zero_live_partners(self):
        """Sole survivor: every partner of the remaining node is dead.  The
        audit must still terminate and classify every rank — recoverable
        exactly when K covered the whole cluster."""
        cluster = dumped_cluster(4, k=4)
        injector = FailureInjector(cluster)
        injector.fail_nodes([0, 1, 2])
        report = injector.audit(dump_id=0)
        assert report.failed_nodes == [0, 1, 2]
        assert report.all_recoverable  # K=N: node 3 holds everything
        assert sorted(report.recoverable_ranks + report.lost_ranks) == [
            0, 1, 2, 3,
        ]

    def test_zero_live_partners_under_replicated(self):
        """Same sole-survivor topology with K=2: ranks whose two replica
        holders both died are reported lost with a missing-chunk count."""
        cluster = dumped_cluster(4, k=2, strategy=Strategy.NO_DEDUP)
        injector = FailureInjector(cluster)
        injector.fail_nodes([0, 1, 2])
        report = injector.audit(dump_id=0)
        assert not report.all_recoverable
        assert all(report.missing_chunks[r] != 0 for r in report.lost_ranks)

    def test_crash_during_final_write_phase(self):
        """A node lost at the write phase — after planning and exchange
        committed to a healthy-world layout — drops its own commits, yet
        every rank must stay recoverable: the replicas shipped to partners
        landed before the loss."""
        n, k = 4, 2
        cfg = DumpConfig(replication_factor=k, chunk_size=64,
                         strategy=Strategy.COLL_DEDUP, f_threshold=4096,
                         degraded=True)
        cluster = Cluster(n)
        injector = FailureInjector(cluster)
        hook = injector.mid_dump_hook(2, phase="write", rank=2)
        World(n).run(
            lambda comm: dump_output(
                comm, make_rank_dataset(comm.rank), cfg, cluster,
                phase_hook=hook,
            )
        )
        assert not cluster.nodes[2].alive
        report = injector.audit(dump_id=0)
        assert report.failed_nodes == [2]
        assert report.all_recoverable, report.missing_chunks

    def test_repeated_crash_of_dead_rank_is_noop(self):
        """Failing an already-dead node changes nothing: no error, no
        double-counted loss, bit-identical audit before and after."""
        cluster = dumped_cluster(5, k=3)
        injector = FailureInjector(cluster)
        injector.fail_nodes([1])
        before = injector.audit(dump_id=0)
        injector.fail_nodes([1])  # idempotent
        injector.fail_nodes([1, 1])  # even repeated within one call
        after = injector.audit(dump_id=0)
        assert before == after
        assert after.failed_nodes == [1]


class TestMidDumpHook:
    def test_fires_once_at_named_phase(self):
        cluster = Cluster(3)
        injector = FailureInjector(cluster)
        hook = injector.mid_dump_hook(2, phase="write")
        hook("exchange", 0)
        assert cluster.nodes[2].alive  # wrong phase: nothing happens
        hook("write", 0)
        assert not cluster.nodes[2].alive
        cluster.revive_all()
        hook("write", 1)  # single-shot: a later entry must not re-kill
        assert cluster.nodes[2].alive
