"""Parallel file system substrate."""

import pytest

from repro.core.chunking import Dataset
from repro.storage.local_store import StorageError
from repro.storage.pfs import ParallelFileSystem


class TestObjects:
    def test_roundtrip_preserves_segments(self):
        pfs = ParallelFileSystem()
        ds = Dataset([b"aaaa", b"bb"])
        nbytes = pfs.write_dataset(0, 0, ds)
        assert nbytes == 6
        out = pfs.read_dataset(0, 0)
        assert out == ds

    def test_missing_raises(self):
        with pytest.raises(StorageError, match="no checkpoint"):
            ParallelFileSystem().read_dataset(0, 0)

    def test_has_and_dumps_for(self):
        pfs = ParallelFileSystem()
        pfs.write_dataset(1, 0, Dataset([b"x"]))
        pfs.write_dataset(1, 4, Dataset([b"y"]))
        assert pfs.has(1, 0) and pfs.has(1, 4)
        assert not pfs.has(1, 2)
        assert pfs.dumps_for(1) == [0, 4]
        assert pfs.dumps_for(2) == []

    def test_overwrite_same_key(self):
        pfs = ParallelFileSystem()
        pfs.write_dataset(0, 0, Dataset([b"old"]))
        pfs.write_dataset(0, 0, Dataset([b"new!"]))
        assert pfs.read_dataset(0, 0).to_bytes() == b"new!"

    def test_snapshot_is_deep(self):
        """The PFS must not alias live application memory."""
        import numpy as np

        pfs = ParallelFileSystem()
        arr = np.zeros(8)
        pfs.write_dataset(0, 0, Dataset([arr]))
        arr[:] = 7.0
        assert pfs.read_dataset(0, 0).to_bytes() == b"\x00" * 64


class TestCompleteness:
    def test_latest_complete_dump(self):
        pfs = ParallelFileSystem()
        for rank in range(3):
            pfs.write_dataset(rank, 0, Dataset([b"a"]))
        pfs.write_dataset(0, 4, Dataset([b"b"]))  # incomplete dump 4
        assert pfs.latest_complete_dump(3) == 0
        for rank in range(1, 3):
            pfs.write_dataset(rank, 4, Dataset([b"b"]))
        assert pfs.latest_complete_dump(3) == 4

    def test_no_dumps(self):
        assert ParallelFileSystem().latest_complete_dump(4) is None


class TestAccounting:
    def test_stats(self):
        pfs = ParallelFileSystem()
        pfs.write_dataset(0, 0, Dataset([b"abcd"]))
        pfs.read_dataset(0, 0)
        assert pfs.stats.bytes_written == 4
        assert pfs.stats.bytes_read == 4
        assert pfs.stats.files_written == 1
        assert pfs.stats.files_read == 1

    def test_flush_time_linear(self):
        pfs = ParallelFileSystem(aggregate_bandwidth=100.0)
        assert pfs.flush_time(1000) == pytest.approx(10.0)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            ParallelFileSystem(aggregate_bandwidth=0)
