"""ChunkStore accounting, dedup vs raw mode, directory backend."""

import os

import pytest

from repro.storage.local_store import ChunkStore, StorageError


def fp(i):
    return bytes([i]) * 20


class TestDedupStore:
    def test_first_put_is_physical(self):
        store = ChunkStore()
        assert store.put(fp(1), b"abcd") is True
        assert store.physical_bytes == 4
        assert store.logical_bytes == 4

    def test_duplicate_put_is_logical_only(self):
        store = ChunkStore()
        store.put(fp(1), b"abcd")
        assert store.put(fp(1), b"abcd") is False
        assert store.physical_bytes == 4
        assert store.logical_bytes == 8
        assert store.refcount(fp(1)) == 2

    def test_get_returns_payload(self):
        store = ChunkStore()
        store.put(fp(2), b"data")
        assert store.get(fp(2)) == b"data"

    def test_get_missing_raises(self):
        with pytest.raises(StorageError):
            ChunkStore().get(fp(9))

    def test_has_and_count(self):
        store = ChunkStore()
        store.put(fp(1), b"a")
        store.put(fp(1), b"a")
        store.put(fp(2), b"b")
        assert store.has(fp(1)) and store.has(fp(2))
        assert not store.has(fp(3))
        assert store.chunk_count == 2
        assert store.put_count == 3

    def test_clear(self):
        store = ChunkStore()
        store.put(fp(1), b"a")
        store.clear()
        assert store.chunk_count == 0
        assert store.physical_bytes == 0
        assert not store.has(fp(1))


class TestRawStore:
    def test_every_put_physical(self):
        store = ChunkStore(dedup=False)
        store.put(fp(1), b"xxxx")
        assert store.put(fp(1), b"xxxx") is True
        assert store.physical_bytes == 8
        assert store.logical_bytes == 8

    def test_content_still_addressable(self):
        store = ChunkStore(dedup=False)
        store.put(fp(1), b"xxxx")
        store.put(fp(1), b"xxxx")
        assert store.get(fp(1)) == b"xxxx"


class TestDirectoryBackend:
    def test_chunks_persisted_as_files(self, tmp_path):
        store = ChunkStore(directory=str(tmp_path))
        store.put(fp(7), b"persisted")
        path = tmp_path / fp(7).hex()
        assert path.exists()
        assert path.read_bytes() == b"persisted"

    def test_get_falls_back_to_disk(self, tmp_path):
        store = ChunkStore(directory=str(tmp_path))
        store.put(fp(7), b"persisted")
        store._chunks.clear()  # simulate memory eviction
        assert store.get(fp(7)) == b"persisted"


class TestBatchedReads:
    def _loaded(self, **kwargs):
        store = ChunkStore(**kwargs)
        for i in range(8):
            store.put(fp(i), bytes([i]) * 4)
        return store

    def test_get_many_matches_gets(self):
        store = self._loaded()
        fps = [fp(3), fp(0), fp(3), fp(7)]
        assert store.get_many(fps) == [store.get(f) for f in fps]

    def test_get_many_empty(self):
        assert ChunkStore().get_many([]) == []

    def test_get_many_generator_input(self):
        store = self._loaded()
        assert store.get_many(fp(i) for i in (1, 2)) == [b"\x01" * 4, b"\x02" * 4]

    def test_get_many_missing_raises_same_error(self):
        store = self._loaded()
        with pytest.raises(StorageError, match="not in store"):
            store.get_many([fp(0), fp(42)])

    def test_has_many_matches_has(self):
        store = self._loaded()
        fps = [fp(0), fp(42), fp(7), fp(99)]
        assert store.has_many(fps) == [store.has(f) for f in fps]
        assert ChunkStore().has_many([]) == []

    def test_disk_backed_get_many(self, tmp_path):
        store = self._loaded(directory=str(tmp_path))
        # Drop the memory copies so get_many actually reads the files.
        evicted = ChunkStore(directory=str(tmp_path))
        fps = [fp(5), fp(1)]
        assert evicted.get_many(fps) == [bytes([5]) * 4, bytes([1]) * 4]
