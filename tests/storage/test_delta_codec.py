"""Packed cluster-delta codec: round-trips, replay equivalence, fallbacks.

The codec is the wire format of the process backend's merge-back protocol
(see ``repro.storage.delta_codec``): if decode+apply ever diverges from
applying the original delta object, the process backend silently corrupts
the parent's cluster — so these tests compare full observable store state,
not just codec output.
"""


import pytest

from repro.storage import Cluster
from repro.storage.delta_codec import (
    DELTA_MAGIC,
    decode_cluster_delta,
    encode_cluster_delta,
)
from repro.storage.local_store import ClusterDelta, NodeDelta, StoreDelta
from repro.storage.manifest import Manifest


def node_state(cluster):
    out = []
    for node in cluster.nodes:
        cs = node.chunks
        out.append(
            {
                "alive": node.alive,
                "logical": cs.logical_bytes,
                "physical": cs.physical_bytes,
                "puts": cs.put_count,
                "chunks": sorted(
                    (fp, cs.refcount(fp), cs.get(fp))
                    for fp in cs.fingerprints()
                ),
                "manifests": sorted(
                    (key, node.get_manifest_blob(*key))
                    for key in node.manifest_keys()
                ),
            }
        )
    return out


def populated_delta(pre_shared=False):
    """A realistic delta: puts, duplicate puts, manifests, a node death.

    With ``pre_shared`` the marking cluster already holds one fingerprint,
    so the delta carries a payload-None entry (the "receiver already has
    the bytes" marker).
    """
    cluster = Cluster(3)
    fp_a, fp_b = b"A" * 20, b"B" * 20
    if pre_shared:
        cluster.nodes[0].chunks.put(fp_a, b"alpha")
    cluster.mark()
    cluster.nodes[0].chunks.put(fp_a, b"alpha")
    cluster.nodes[0].chunks.put(fp_a, b"alpha")  # dup -> count 2
    cluster.nodes[0].chunks.put(fp_b, b"beta!")
    cluster.nodes[1].chunks.put(fp_b, b"beta!")
    m = Manifest(rank=1, dump_id=4, segment_lengths=[10],
                 fingerprints=[fp_a, fp_b], chunk_size=5)
    cluster.nodes[1].put_manifest(m)
    cluster.fail_node(2)
    return cluster, cluster.collect_delta()


def replay_onto_fresh(delta, pre_shared=False):
    cluster = Cluster(3)
    if pre_shared:
        cluster.nodes[0].chunks.put(b"A" * 20, b"alpha")
    cluster.apply_delta(delta)
    return cluster


class TestRoundTrip:
    @pytest.mark.parametrize("pre_shared", [False, True])
    def test_decode_apply_matches_direct_apply(self, pre_shared):
        _src, delta = populated_delta(pre_shared)
        blob = encode_cluster_delta(delta)
        assert blob[:4] == DELTA_MAGIC
        decoded = decode_cluster_delta(blob)
        direct = replay_onto_fresh(delta, pre_shared)
        via_codec = replay_onto_fresh(decoded, pre_shared)
        assert node_state(direct) == node_state(via_codec)
        assert not via_codec.nodes[2].alive

    def test_payload_none_preserved(self):
        _src, delta = populated_delta(pre_shared=True)
        decoded = decode_cluster_delta(encode_cluster_delta(delta))
        entries = decoded.nodes[0].chunks.entries
        by_fp = {fp: payload for fp, payload, _c in entries}
        assert by_fp[b"A" * 20] is None  # marker, not empty bytes
        assert by_fp[b"B" * 20] == b"beta!"

    def test_decodes_from_memoryview(self):
        """The parent decodes straight out of a mapped shared segment —
        the codec must accept a memoryview without copying it first."""
        _src, delta = populated_delta()
        blob = encode_cluster_delta(delta)
        padded = b"\x00" * 8 + blob + b"\xff" * 8
        decoded = decode_cluster_delta(memoryview(padded)[8 : 8 + len(blob)])
        assert node_state(replay_onto_fresh(decoded)) == node_state(
            replay_onto_fresh(delta)
        )

    def test_empty_delta(self):
        cluster = Cluster(2)
        cluster.mark()
        delta = cluster.collect_delta()
        decoded = decode_cluster_delta(encode_cluster_delta(delta))
        assert decoded.nodes == {}


class FakeParityRecord:
    """Pickle-friendly stand-in for an erasure parity record."""

    def __init__(self, tag):
        self.tag = tag

    def __eq__(self, other):
        return isinstance(other, FakeParityRecord) and self.tag == other.tag


class TestFallbacks:
    def test_mixed_width_fingerprints_fall_back_to_pickle(self):
        """Mixed digest widths are impossible within one dump but legal
        through the raw store API; the codec must still round-trip them."""
        store = StoreDelta([(b"x" * 20, b"p", 1), (b"y" * 16, b"q", 1)])
        delta = ClusterDelta(
            {0: NodeDelta(store, {}, [], None)}
        )
        blob = encode_cluster_delta(delta)
        assert blob[:4] != DELTA_MAGIC  # pickle wrapper magic
        decoded = decode_cluster_delta(blob)
        assert decoded.nodes[0].chunks.entries == store.entries

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_cluster_delta(b"NOPE" + b"\x00" * 16)

    def test_parity_records_survive(self):
        """Parity ships as an embedded pickle section — verify it lands."""
        records = [FakeParityRecord("p0"), FakeParityRecord("p1")]
        delta = ClusterDelta(
            {1: NodeDelta(StoreDelta([]), {}, list(records), None)}
        )
        decoded = decode_cluster_delta(encode_cluster_delta(delta))
        assert decoded.nodes[1].parity == records


class TestCommutativity:
    def test_overlapping_deltas_merge_like_threads(self):
        """Two ranks putting the same fingerprint must fold to the same
        refcounts regardless of codec involvement or application order."""
        fp = b"Z" * 20
        deltas = []
        for _ in range(2):
            c = Cluster(2)
            c.mark()
            c.nodes[0].chunks.put(fp, b"zz")
            deltas.append(c.collect_delta())
        a = Cluster(2)
        for d in deltas:
            a.apply_delta(d)
        b = Cluster(2)
        for d in reversed(deltas):
            b.apply_delta(decode_cluster_delta(encode_cluster_delta(d)))
        assert node_state(a) == node_state(b)
        assert a.nodes[0].chunks.refcount(fp) == 2
