"""Manifest serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.manifest import Manifest


def fp(i):
    return bytes([i]) * 20


class TestRoundtrip:
    def test_basic(self):
        m = Manifest(
            rank=3,
            dump_id=7,
            segment_lengths=[100, 0, 4096],
            fingerprints=[fp(1), fp(2), fp(1)],
            chunk_size=4096,
        )
        out = Manifest.from_bytes(m.to_bytes())
        assert out.rank == 3
        assert out.dump_id == 7
        assert out.segment_lengths == [100, 0, 4096]
        assert out.fingerprints == [fp(1), fp(2), fp(1)]
        assert out.chunk_size == 4096

    def test_empty_manifest(self):
        m = Manifest(rank=0, dump_id=0)
        out = Manifest.from_bytes(m.to_bytes())
        assert out.fingerprints == []
        assert out.segment_lengths == []

    def test_properties(self):
        m = Manifest(rank=0, dump_id=0, segment_lengths=[10, 20], fingerprints=[fp(1)])
        assert m.total_bytes == 30
        assert m.total_chunks == 1
        assert m.key() == (0, 0)

    def test_mixed_digest_sizes_rejected(self):
        m = Manifest(rank=0, dump_id=0, fingerprints=[fp(1), b"short"])
        with pytest.raises(ValueError, match="mixed"):
            m.to_bytes()

    def test_trailing_bytes_detected(self):
        blob = Manifest(rank=0, dump_id=0, fingerprints=[fp(1)]).to_bytes()
        with pytest.raises(ValueError, match="trailing"):
            Manifest.from_bytes(blob + b"junk")

    def test_wrong_version_rejected(self):
        blob = bytearray(Manifest(rank=0, dump_id=0).to_bytes())
        blob[0] = 99
        with pytest.raises(ValueError, match="version"):
            Manifest.from_bytes(bytes(blob))

    @given(
        st.integers(0, 2**16),
        st.integers(0, 2**16),
        st.lists(st.integers(0, 2**40), max_size=8),
        st.lists(st.binary(min_size=16, max_size=16), max_size=50),
        st.integers(1, 2**20),
    )
    def test_roundtrip_property(self, rank, dump_id, seg_lengths, fps, chunk_size):
        m = Manifest(
            rank=rank,
            dump_id=dump_id,
            segment_lengths=seg_lengths,
            fingerprints=fps,
            chunk_size=chunk_size,
        )
        out = Manifest.from_bytes(m.to_bytes())
        assert (out.rank, out.dump_id) == (rank, dump_id)
        assert out.segment_lengths == seg_lengths
        assert out.fingerprints == fps
        assert out.chunk_size == chunk_size
