"""Cluster: lookup, node mapping, failure handling."""

import pytest

from repro.storage.local_store import Cluster, StorageError
from repro.storage.manifest import Manifest


def fp(i):
    return bytes([i]) * 20


class TestLookup:
    def test_locate_live_holders(self):
        cluster = Cluster(4)
        cluster.nodes[1].chunks.put(fp(1), b"x")
        cluster.nodes[3].chunks.put(fp(1), b"x")
        assert cluster.locate(fp(1)) == [1, 3]
        cluster.fail_node(1)
        assert cluster.locate(fp(1)) == [3]

    def test_locate_any_fetches(self):
        cluster = Cluster(3)
        cluster.nodes[2].chunks.put(fp(5), b"payload")
        assert cluster.locate_any(fp(5)) == b"payload"

    def test_locate_any_unrecoverable(self):
        cluster = Cluster(2)
        cluster.nodes[0].chunks.put(fp(5), b"p")
        cluster.fail_node(0)
        with pytest.raises(StorageError, match="unrecoverable"):
            cluster.locate_any(fp(5))

    def test_replica_nodes_includes_dead(self):
        cluster = Cluster(3)
        cluster.nodes[0].chunks.put(fp(1), b"x")
        cluster.fail_node(0)
        assert cluster.replica_nodes(fp(1)) == {0}


class TestManifests:
    def test_find_prefers_owner(self):
        cluster = Cluster(3)
        m = Manifest(rank=1, dump_id=0, segment_lengths=[4], fingerprints=[fp(1)])
        cluster.nodes[1].put_manifest(m)
        cluster.nodes[2].put_manifest(m)
        found = cluster.find_manifest(1, 0)
        assert found.rank == 1

    def test_find_falls_back_to_replica(self):
        cluster = Cluster(3)
        m = Manifest(rank=1, dump_id=0)
        cluster.nodes[2].put_manifest(m)
        cluster.fail_node(1)
        assert cluster.find_manifest(1, 0).rank == 1

    def test_find_missing_raises(self):
        with pytest.raises(StorageError):
            Cluster(2).find_manifest(0, 0)


class TestRankToNode:
    def test_multiple_ranks_per_node(self):
        cluster = Cluster(6, rank_to_node=[0, 0, 1, 1, 2, 2])
        assert cluster.node_of(3).node_id == 1
        assert len(cluster.nodes) == 3

    def test_storage_for_failed_node_raises(self):
        cluster = Cluster(4, rank_to_node=[0, 0, 1, 1])
        cluster.fail_node(0)
        with pytest.raises(StorageError, match="failed"):
            cluster.storage_for(1)
        cluster.storage_for(2)  # other node unaffected

    def test_mapping_length_validated(self):
        with pytest.raises(ValueError):
            Cluster(3, rank_to_node=[0, 1])

    def test_totals_aggregate_nodes(self):
        cluster = Cluster(2)
        cluster.nodes[0].chunks.put(fp(1), b"aa")
        cluster.nodes[1].chunks.put(fp(1), b"aa")
        cluster.nodes[1].chunks.put(fp(1), b"aa")
        assert cluster.total_physical_bytes == 4
        assert cluster.total_logical_bytes == 6
