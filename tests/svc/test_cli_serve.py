"""The ``repro-eval serve`` subcommand: report output, GC, metrics file."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.smoke

BASE = [
    "serve", "--tenants", "2", "--dumps", "2", "--overlap", "0.5",
    "--n", "4", "--chunks-per-rank", "8", "--chunk-size", "64",
]


class TestServe:
    def test_prints_the_service_report(self, capsys):
        assert main(BASE) == 0
        text = capsys.readouterr().out
        assert "service: 2 tenants on 4 ranks" in text
        assert "tenant-0" in text and "tenant-1" in text
        assert "cross-tenant:" in text
        assert "dedup ratio" in text
        assert "store:" in text and "8 shards" in text
        assert "queue:" in text

    def test_gc_oldest_reports_cross_tenant_retention(self, capsys):
        assert main(BASE + ["--gc-oldest"]) == 0
        text = capsys.readouterr().out
        assert "gc tenant-0 dump 0:" in text
        assert "cross-tenant" in text

    def test_out_writes_a_valid_run_snapshot(self, capsys, tmp_path):
        out = str(tmp_path / "svc_run.json")
        assert main(BASE + ["--out", out]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        run = json.load(open(out))
        assert run["schema"] == "repro.obs/run/v1"
        assert run["meta"]["source"] == "repro.svc"
        (entry,) = run["ranks"]
        gauges = entry["metrics"]["gauges"]
        assert "svc_queue_depth" in gauges
        assert "svc_cross_tenant_dedup_ratio" in gauges
        assert entry["metrics"]["counters"]["svc_dumps_completed"] == 4

    def test_quota_rejections_are_reported_not_fatal(self, capsys):
        argv = BASE + ["--quota-rate", "1", "--dumps", "3"]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "rejected tenant-0 dump" in text
        assert "rejections" in text

    def test_split_attribution(self, capsys):
        assert main(BASE + ["--attribution", "split"]) == 0
        assert "split attribution" in capsys.readouterr().out

    def test_bad_tenant_count_is_a_one_line_error(self, capsys):
        assert main(["serve", "--tenants", "not-a-number"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
