"""The ``repro-eval serve`` subcommand: report output, GC, metrics file."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.smoke

BASE = [
    "serve", "--tenants", "2", "--dumps", "2", "--overlap", "0.5",
    "--n", "4", "--chunks-per-rank", "8", "--chunk-size", "64",
]


class TestServe:
    def test_prints_the_service_report(self, capsys):
        assert main(BASE) == 0
        text = capsys.readouterr().out
        assert "service: 2 tenants on 4 ranks" in text
        assert "tenant-0" in text and "tenant-1" in text
        assert "cross-tenant:" in text
        assert "dedup ratio" in text
        assert "store:" in text and "8 shards" in text
        assert "queue:" in text

    def test_gc_oldest_reports_cross_tenant_retention(self, capsys):
        assert main(BASE + ["--gc-oldest"]) == 0
        text = capsys.readouterr().out
        assert "gc tenant-0 dump 0:" in text
        assert "cross-tenant" in text

    def test_out_writes_a_valid_run_snapshot(self, capsys, tmp_path):
        out = str(tmp_path / "svc_run.json")
        assert main(BASE + ["--out", out]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        run = json.load(open(out))
        assert run["schema"] == "repro.obs/run/v1"
        assert run["meta"]["source"] == "repro.svc"
        (entry,) = run["ranks"]
        gauges = entry["metrics"]["gauges"]
        assert "svc_queue_depth" in gauges
        assert "svc_cross_tenant_dedup_ratio" in gauges
        assert entry["metrics"]["counters"]["svc_dumps_completed"] == 4

    def test_quota_rejections_are_reported_not_fatal(self, capsys):
        argv = BASE + ["--quota-rate", "1", "--dumps", "3"]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "rejected tenant-0 dump" in text
        assert "rejections" in text

    def test_split_attribution(self, capsys):
        assert main(BASE + ["--attribution", "split"]) == 0
        assert "split attribution" in capsys.readouterr().out

    def test_bad_tenant_count_is_a_one_line_error(self, capsys):
        assert main(["serve", "--tenants", "not-a-number"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1


class TestServeSLO:
    def test_slo_flag_adds_the_report_section(self, capsys):
        assert main(BASE + ["--slo"]) == 0
        text = capsys.readouterr().out
        assert "slo:" in text

    def test_top_every_prints_dashboard_lines(self, capsys):
        assert main(BASE + ["--slo", "--top-every", "1"]) == 0
        text = capsys.readouterr().out
        assert "top · " in text
        assert "queue=" in text


class TestSloCommand:
    ARGS = [
        "slo", "--seed", "7", "--tenants", "2", "--bursts", "4",
        "--n", "4", "--chunks-per-rank", "4", "--chunk-size", "64",
    ]

    def test_prints_a_burn_rate_report(self, capsys):
        assert main(self.ARGS) == 0
        text = capsys.readouterr().out
        assert "slo report" in text
        assert "dump.queue_wait_ticks.p95 < 2" in text

    def test_same_seed_same_verdict_bytes(self, tmp_path, capsys):
        out_a = str(tmp_path / "a.json")
        out_b = str(tmp_path / "b.json")
        assert main(self.ARGS + ["--out", out_a]) == 0
        assert main(self.ARGS + ["--out", out_b]) == 0
        a = (tmp_path / "a.json").read_bytes()
        assert a == (tmp_path / "b.json").read_bytes()
        from repro.obs.schema import validate_slo
        validate_slo(json.loads(a))

    def test_timeline_out_is_a_valid_document(self, tmp_path, capsys):
        out = str(tmp_path / "timeline.json")
        assert main(self.ARGS + ["--timeline-out", out]) == 0
        from repro.obs.schema import validate_timeline
        validate_timeline(json.loads((tmp_path / "timeline.json").read_text()))

    def test_custom_objective(self, capsys):
        argv = self.ARGS + ["--objective", "dump.latency_s.p99 < 100"]
        assert main(argv) == 0
        assert "dump.latency_s.p99 < 100" in capsys.readouterr().out

    def test_malformed_objective_is_a_one_line_error(self, capsys):
        argv = self.ARGS + ["--objective", "nope"]
        assert main(argv) == 2
        assert "repro-eval:" in capsys.readouterr().err

    def test_check_exits_one_when_alerts_fired(self, capsys):
        # Seeded bursty driver with a hair-trigger objective: any queue
        # wait at all violates, so the alert fires and --check gates.
        argv = [
            "slo", "--seed", "3", "--tenants", "3", "--bursts", "6",
            "--n", "4", "--chunks-per-rank", "4", "--chunk-size", "64",
            "--objective", "dump.queue_wait_ticks.p50 <= 0",
            "--check",
        ]
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "fire@t" in out

    def test_check_passes_a_quiet_run(self):
        # A permissive objective never violates, so --check is clean.
        argv = self.ARGS + [
            "--objective", "dump.queue_wait_ticks.p95 < 1e9", "--check",
        ]
        assert main(argv) == 0
