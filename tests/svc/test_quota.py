"""Quota axes reject with typed errors; unlimited admits everything."""

import pytest

from repro.svc import (
    DumpRateExceededError,
    QuotaExceededError,
    TenantQuota,
    TenantUsage,
)
from repro.svc.quota import check_quota


class TestAxes:
    def test_default_quota_is_unlimited(self):
        check_quota(
            "t", TenantQuota(), TenantUsage(), 10**12, 10**9, tick=0
        )

    def test_logical_bytes_axis(self):
        quota = TenantQuota(max_logical_bytes=100)
        usage = TenantUsage(logical_bytes=60)
        check_quota("t", quota, usage, 40, 1, tick=0)
        with pytest.raises(QuotaExceededError) as exc_info:
            check_quota("t", quota, usage, 41, 1, tick=0)
        assert exc_info.value.quota == "logical-bytes"
        assert exc_info.value.limit == 100
        assert exc_info.value.requested == 101

    def test_chunks_axis(self):
        quota = TenantQuota(max_chunks=10)
        usage = TenantUsage(chunk_records=8)
        check_quota("t", quota, usage, 0, 2, tick=0)
        with pytest.raises(QuotaExceededError) as exc_info:
            check_quota("t", quota, usage, 0, 3, tick=0)
        assert exc_info.value.quota == "chunks"

    def test_dump_rate_axis_uses_the_tick_window(self):
        quota = TenantQuota(max_dumps_per_window=2, window_ticks=4)
        usage = TenantUsage(submit_ticks=[1, 2])
        with pytest.raises(DumpRateExceededError) as exc_info:
            check_quota("t", quota, usage, 0, 0, tick=3)
        assert exc_info.value.quota == "dump-rate"
        # Once the earlier submits age out of the window, admits resume.
        check_quota("t", quota, usage, 0, 0, tick=7)

    def test_rate_error_is_a_quota_error(self):
        """Callers catching the broad class see rate rejections too."""
        assert issubclass(DumpRateExceededError, QuotaExceededError)

    def test_check_does_not_mutate_usage(self):
        quota = TenantQuota(max_logical_bytes=100)
        usage = TenantUsage(logical_bytes=60)
        before = (usage.logical_bytes, usage.rejected, list(usage.submit_ticks))
        with pytest.raises(QuotaExceededError):
            check_quota("t", quota, usage, 1000, 1, tick=0)
        assert (
            usage.logical_bytes, usage.rejected, list(usage.submit_ticks)
        ) == before
