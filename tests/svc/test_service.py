"""CheckpointService end to end: cross-tenant dedup, isolation, GC,
quotas, scheduling and the obs metrics surface."""

import pytest

from repro.core.config import DumpConfig
from repro.svc import (
    CheckpointService,
    QueueFullError,
    QuotaExceededError,
    TenantQuota,
    TenantWorkload,
    UnknownDumpError,
    UnknownTenantError,
    TenantExistsError,
    build_report,
    format_service_report,
)

N = 4
CS = 64


def make_service(**kwargs):
    kwargs.setdefault("config", DumpConfig(replication_factor=2, chunk_size=CS))
    kwargs.setdefault("shard_count", 8)
    return CheckpointService(N, **kwargs)


def tenant_workload(i, overlap=0.5, dump_index=0):
    return TenantWorkload(
        i,
        overlap=overlap,
        chunks_per_rank=16,
        chunk_size=CS,
        dump_index=dump_index,
    )


def dump(service, tenant, workload):
    ticket = service.submit(tenant, workload)
    service.drain()
    return service.outcome(ticket)


class TestCrossTenantDedup:
    def test_shared_content_is_stored_once(self):
        """Two tenants dumping 50%-shared content: the shared chunks hit
        the first tenant's copies, physical stays below the sum of
        logical, and the savings show up in the service ratio."""
        service = make_service()
        service.register_tenant("alice")
        service.register_tenant("bob")
        first = dump(service, "alice", tenant_workload(0))
        second = dump(service, "bob", tenant_workload(1))
        assert first.cross_tenant_hits == 0
        assert second.cross_tenant_hits > 0
        assert second.new_chunks < first.new_chunks
        stats = service.cluster.store_stats()
        assert stats["physical_bytes"] < stats["logical_bytes"]
        assert service.index.cross_tenant_shared_bytes > 0
        ratio = service.cross_tenant_dedup_ratio()
        assert 0.0 < ratio < 1.0
        # overlap=0.5 means bob's footprint is ~half shared.
        assert service.index.shared_bytes("bob") >= (
            0.4 * service.index.referenced_bytes("bob")
        )

    def test_restores_are_correct_for_both_tenants(self):
        service = make_service()
        service.register_tenant("alice")
        service.register_tenant("bob")
        workloads = {"alice": tenant_workload(0), "bob": tenant_workload(1)}
        for name, workload in workloads.items():
            dump(service, name, workload)
        for name, workload in workloads.items():
            for rank in range(N):
                dataset, _report = service.restore(name, rank, 0)
                expected = workload.build_dataset(rank, N).to_bytes()
                assert dataset.to_bytes() == expected

    def test_identical_tenants_fully_dedup(self):
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        dump(service, "a", tenant_workload(0, overlap=1.0))
        outcome = dump(service, "b", tenant_workload(1, overlap=1.0))
        assert outcome.new_chunks == 0
        assert outcome.cross_tenant_hits > 0


class TestIsolation:
    def test_namespaces_are_per_tenant(self):
        service = make_service()
        service.register_tenant("alice")
        service.register_tenant("bob")
        dump(service, "alice", tenant_workload(0))
        # bob has no dump 0 even though alice does.
        with pytest.raises(UnknownDumpError):
            service.restore("bob", 0, 0)
        assert service.isolation_audit() == []

    def test_unknown_tenant_and_duplicate_registration(self):
        service = make_service()
        service.register_tenant("alice")
        with pytest.raises(TenantExistsError):
            service.register_tenant("alice")
        with pytest.raises(UnknownTenantError):
            service.submit("nobody", tenant_workload(0))
        with pytest.raises(UnknownTenantError):
            service.restore("nobody", 0, 0)


class TestGarbageCollection:
    def test_gc_never_breaks_the_other_tenants_restore(self):
        service = make_service()
        service.register_tenant("alice")
        service.register_tenant("bob")
        dump(service, "alice", tenant_workload(0))
        dump(service, "bob", tenant_workload(1))
        outcome = service.gc("alice", 0)
        assert outcome.retained_cross_tenant > 0
        assert outcome.chunks_dropped > 0  # alice's unique chunks go
        with pytest.raises(UnknownDumpError):
            service.restore("alice", 0, 0)
        workload = tenant_workload(1)
        for rank in range(N):
            dataset, _report = service.restore("bob", rank, 0)
            assert dataset.to_bytes() == workload.build_dataset(
                rank, N
            ).to_bytes()

    def test_last_reference_physically_reclaims(self):
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        dump(service, "a", tenant_workload(0, overlap=1.0))
        dump(service, "b", tenant_workload(1, overlap=1.0))
        first = service.gc("a", 0)
        assert first.chunks_dropped == 0  # b still references everything
        second = service.gc("b", 0)
        assert second.chunks_dropped > 0
        assert second.bytes_reclaimed > 0
        assert len(service.index) == 0
        assert all(
            node.chunks.chunk_count == 0 for node in service.cluster.nodes
        )

    def test_gc_of_unknown_dump_raises(self):
        service = make_service()
        service.register_tenant("a")
        with pytest.raises(UnknownDumpError):
            service.gc("a", 0)


class TestQuotasAndScheduling:
    def test_quota_rejection_is_typed_and_counted(self):
        service = make_service()
        service.register_tenant(
            "small", quota=TenantQuota(max_logical_bytes=1)
        )
        with pytest.raises(QuotaExceededError):
            service.submit("small", tenant_workload(0))
        report = build_report(service)
        assert report.tenants[0].rejected == 1
        assert report.rejections == {"QuotaExceededError": 1}

    def test_queue_depth_backpressure(self):
        service = make_service(queue_depth=2)
        service.register_tenant("a")
        service.submit("a", tenant_workload(0, dump_index=0))
        service.submit("a", tenant_workload(0, dump_index=1))
        with pytest.raises(QueueFullError):
            service.submit("a", tenant_workload(0, dump_index=2))
        service.drain()

    def test_drain_alternates_tenants_fairly(self):
        service = make_service(max_inflight=1)
        for name in ("chatty", "quiet"):
            service.register_tenant(name)
        for dump_index in range(3):
            service.submit("chatty", tenant_workload(0, dump_index=dump_index))
        service.submit("quiet", tenant_workload(1))
        outcomes = service.drain()
        assert [o.tenant for o in outcomes] == [
            "chatty", "quiet", "chatty", "chatty",
        ]
        # The last chatty dump waited behind three earlier admissions.
        assert outcomes[-1].wait_ticks > outcomes[0].wait_ticks

    def test_dump_rate_window(self):
        service = make_service()
        service.register_tenant(
            "bursty",
            quota=TenantQuota(max_dumps_per_window=1, window_ticks=2),
        )
        dump(service, "bursty", tenant_workload(0, dump_index=0))
        with pytest.raises(QuotaExceededError):
            service.submit("bursty", tenant_workload(0, dump_index=1))
        # Ticks advance as other tenants' work drains; the window frees up.
        service.register_tenant("other")
        for dump_index in range(3):
            dump(service, "other", tenant_workload(1, dump_index=dump_index))
        dump(service, "bursty", tenant_workload(0, dump_index=1))


class TestObservability:
    def test_metrics_snapshot_carries_the_service_gauges(self):
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        dump(service, "a", tenant_workload(0))
        dump(service, "b", tenant_workload(1))
        run = service.capture_metrics(meta={"test": True})
        assert run["schema"] == "repro.obs/run/v1"
        (entry,) = run["ranks"]
        counters = entry["metrics"]["counters"]
        gauges = entry["metrics"]["gauges"]
        assert counters["svc_dumps_submitted"] == 2
        assert counters["svc_dumps_completed"] == 2
        for name in (
            "svc_queue_depth",
            "svc_cross_tenant_dedup_ratio",
            "svc_store_chunks",
            "svc_store_dedup_ratio",
            "svc_store_shard_skew",
        ):
            assert name in gauges
        assert "svc_admission_latency_seconds" in entry["metrics"][
            "histograms"
        ]
        assert gauges["svc_cross_tenant_dedup_ratio"] > 0

    def test_report_round_trip(self):
        service = make_service(attribution="split")
        service.register_tenant("a")
        service.register_tenant("b")
        dump(service, "a", tenant_workload(0))
        dump(service, "b", tenant_workload(1))
        report = build_report(service)
        assert report.attribution == "split"
        assert len(report.tenants) == 2
        summed = sum(t.charged_bytes for t in report.tenants)
        assert summed == pytest.approx(report.unique_bytes)
        assert report.store_stats["shard_count"] == 8
        text = format_service_report(report)
        assert "cross-tenant:" in text
        assert "store:" in text
        assert "queue:" in text
        for t in report.tenants:
            assert t.tenant in text


class TestBackendsAndRepair:
    def test_process_backend_end_to_end(self):
        service = make_service(backend="process", timeout=60)
        service.register_tenant("a")
        service.register_tenant("b")
        dump(service, "a", tenant_workload(0))
        outcome = dump(service, "b", tenant_workload(1))
        assert outcome.cross_tenant_hits > 0
        workload = tenant_workload(1)
        dataset, _report = service.restore("b", 0, 0)
        assert dataset.to_bytes() == workload.build_dataset(0, N).to_bytes()

    def test_repair_heals_every_tenants_dumps(self):
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        dump(service, "a", tenant_workload(0))
        dump(service, "b", tenant_workload(1))
        service.cluster.fail_node(1)
        report = service.repair()
        assert report.chunks_moved >= 0
        for name, idx in (("a", 0), ("b", 1)):
            workload = tenant_workload(idx)
            for rank in range(N):
                dataset, _restore_report = service.restore(name, rank, 0)
                assert dataset.to_bytes() == workload.build_dataset(
                    rank, N
                ).to_bytes()

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            make_service(attribution="auction")
        with pytest.raises(ValueError):
            make_service(max_inflight=0)
