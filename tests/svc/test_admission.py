"""Admission queue: per-tenant FIFO order, round-robin fairness, bounds."""

import pytest

from repro.svc import AdmissionQueue, DumpRequest, QueueFullError


def req(ticket, tenant):
    return DumpRequest(ticket=ticket, tenant=tenant, workload=None)


class TestFairness:
    def test_fifo_within_one_tenant(self):
        q = AdmissionQueue()
        for i in range(4):
            q.push(req(i, "a"))
        assert [q.pop().ticket for _ in range(4)] == [0, 1, 2, 3]
        assert q.pop() is None

    def test_round_robin_across_tenants(self):
        """One chatty tenant cannot starve the others: service order
        alternates tenants no matter how lopsided the submit order was."""
        q = AdmissionQueue()
        ticket = 0
        for _ in range(4):
            q.push(req(ticket, "chatty"))
            ticket += 1
        q.push(req(ticket, "quiet"))
        order = []
        while True:
            r = q.pop()
            if r is None:
                break
            order.append(r.tenant)
        assert order == ["chatty", "quiet", "chatty", "chatty", "chatty"]

    def test_cursor_resumes_after_last_served(self):
        q = AdmissionQueue()
        q.push(req(0, "a"))
        q.push(req(1, "b"))
        q.push(req(2, "c"))
        q.push(req(3, "a"))
        assert [q.pop().tenant for _ in range(4)] == ["a", "b", "c", "a"]

    def test_pop_skips_drained_tenants(self):
        q = AdmissionQueue()
        q.push(req(0, "a"))
        q.push(req(1, "b"))
        assert q.pop().tenant == "a"
        assert q.pop().tenant == "b"
        q.push(req(2, "b"))
        assert q.pop().tenant == "b"


class TestBounds:
    def test_push_past_depth_raises(self):
        q = AdmissionQueue(max_depth=2)
        q.push(req(0, "a"))
        q.push(req(1, "b"))
        with pytest.raises(QueueFullError):
            q.push(req(2, "c"))
        # Popping frees the slot again.
        q.pop()
        q.push(req(3, "c"))

    def test_depth_accounting(self):
        q = AdmissionQueue()
        assert q.depth == 0
        q.push(req(0, "a"))
        q.push(req(1, "a"))
        q.push(req(2, "b"))
        assert q.depth == 3
        assert q.depth_of("a") == 2
        assert q.depth_of("b") == 1
        assert q.depth_of("nobody") == 0
        assert q.max_depth_seen == 3
        q.pop()
        assert q.depth == 2
        assert q.max_depth_seen == 3
        assert q.pushed == 3
        assert q.popped == 1

    def test_max_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)
