"""Checkpoint chains through the multi-tenant service: per-tenant chain
managers over the shared cluster/index, global dump-id space, quota and
usage accounting, GC refunds and the chain timeline/metrics surface."""

import pytest

from repro.apps.mutating import MutatingWorkload
from repro.chain import ChainBrokenError, ChainStateError
from repro.core.config import DumpConfig
from repro.svc import (
    CheckpointService,
    QuotaExceededError,
    TenantQuota,
)

N = 3
CS = 64

pytestmark = pytest.mark.smoke


def make_service(**kwargs):
    kwargs.setdefault("config", DumpConfig(replication_factor=2, chunk_size=CS))
    return CheckpointService(N, **kwargs)


def make_workload(seed=99):
    return MutatingWorkload(
        seed=seed,
        segment_lengths=(CS * 4, CS + 21, CS // 2),
        chunk_size=CS,
        dirty_frac=0.3,
    )


def grow_chain(service, tenant, workload, deltas=3):
    """Dump a full plus ``deltas`` delta epochs, returning the per-epoch
    workload snapshots for oracle comparison."""
    service.chain_dump(tenant, workload, kind="full")
    snapshots = {0: workload.at_epoch(0)}
    for epoch in range(1, deltas + 1):
        workload.advance(1)
        service.chain_dump(tenant, workload)
        snapshots[epoch] = workload.at_epoch(epoch)
    return snapshots


class TestChainLifecycle:
    def test_chain_dump_restore_round_trip(self):
        service = make_service()
        service.register_tenant("a")
        snapshots = grow_chain(service, "a", make_workload())
        manager = service.chain_of("a")
        assert manager.live_epochs() == [0, 1, 2, 3]
        for epoch, snap in snapshots.items():
            for rank in range(N):
                data, report = service.chain_restore("a", rank, epoch)
                assert data.to_bytes() == snap.build_dataset(
                    rank, N
                ).to_bytes()
                assert report.total_bytes == len(data.to_bytes())

    def test_deltas_ship_less_than_fulls(self):
        service = make_service()
        service.register_tenant("a")
        workload = make_workload()
        full = service.chain_dump("a", workload, kind="full")
        workload.advance(1)
        delta = service.chain_dump("a", workload)
        assert full.kind == "full" and delta.kind == "delta"
        assert not delta.promoted
        assert 0 < delta.changed_chunks < delta.total_chunks
        assert sum(r.dataset_bytes for r in delta.reports) < sum(
            r.dataset_bytes for r in full.reports
        )

    def test_first_chain_dump_promotes_delta_to_full(self):
        service = make_service()
        service.register_tenant("a")
        result = service.chain_dump("a", make_workload())
        assert result.kind == "full"
        assert result.promoted

    def test_restores_survive_gc_and_compaction(self):
        service = make_service()
        service.register_tenant("a")
        workload = make_workload()
        snapshots = grow_chain(service, "a", workload, deltas=4)
        gc = service.chain_gc("a")
        assert gc.epoch == 0
        compacted = service.chain_compact("a")
        assert compacted.compacted
        manager = service.chain_of("a")
        for epoch in manager.live_epochs():
            for rank in range(N):
                data, _report = service.chain_restore("a", rank, epoch)
                assert data.to_bytes() == snapshots[epoch].build_dataset(
                    rank, N
                ).to_bytes()

    def test_gc_of_empty_chain_raises(self):
        service = make_service()
        service.register_tenant("a")
        with pytest.raises(ChainStateError):
            service.chain_gc("a")
        with pytest.raises(ChainStateError):
            service.chain_compact("a")


class TestGlobalIdSpace:
    def test_chain_dumps_share_the_global_dump_id_space(self):
        """Regular dumps and chain dumps interleave without ever reusing
        a dump id, and every chain id is registered to its tenant."""
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        workload = make_workload()
        ticket = service.submit("b", workload)
        service.drain()
        first = service.outcome(ticket)
        chain_ids = [service.chain_dump("a", workload, kind="full").dump_id]
        for _ in range(2):
            workload.advance(1)
            chain_ids.append(service.chain_dump("a", workload).dump_id)
        ticket2 = service.submit("b", workload)
        service.drain()
        second = service.outcome(ticket2)
        all_ids = [first.global_dump_id, *chain_ids, second.global_dump_id]
        assert len(set(all_ids)) == len(all_ids)
        for dump_id in chain_ids:
            assert service._dump_owner[dump_id] == "a"

    def test_compaction_allocates_a_fresh_registered_id(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        outcome = service.chain_compact("a")
        assert outcome.new_dump_id > outcome.old_dump_id
        assert service._dump_owner[outcome.new_dump_id] == "a"
        # the allocator moved past the compaction id
        assert service._next_global > outcome.new_dump_id


class TestQuotaAndUsage:
    def test_chain_dump_usage_is_refunded_on_gc(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        usage = service._state("a").usage
        assert usage.live_dumps == 3
        before = usage.logical_bytes
        assert before > 0
        service.chain_gc("a")
        assert usage.live_dumps == 2
        assert usage.logical_bytes < before

    def test_chain_quota_is_checked_against_full_size(self):
        """Admission uses the full dataset size (a delta may always
        promote), so a quota below one full epoch rejects even deltas."""
        workload = make_workload()
        full_bytes = sum(
            workload.per_rank_bytes(N, rank) for rank in range(N)
        )
        service = make_service()
        service.register_tenant(
            "a", TenantQuota(max_logical_bytes=full_bytes)
        )
        service.chain_dump("a", workload, kind="full")
        workload.advance(1)
        with pytest.raises(QuotaExceededError):
            service.chain_dump("a", workload)
        usage = service._state("a").usage
        assert usage.rejected == 1
        # after pruning the full, the delta (promoted to full) admits
        service.chain_gc("a")
        result = service.chain_dump("a", workload, kind="full")
        assert result.epoch == 1


class TestSharedIndexIsolation:
    def test_other_tenant_gc_never_breaks_a_chain(self):
        """Tenant b dumps content overlapping a's chain, then GCs it;
        the shared refcounted index must keep a's chunks restorable."""
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        snapshots = grow_chain(
            service, "a", make_workload(seed=7), deltas=2
        )
        ticket = service.submit("b", make_workload(seed=7))
        service.drain()
        outcome = service.outcome(ticket)
        service.gc("b", outcome.tenant_dump_id)
        manager = service.chain_of("a")
        for epoch in manager.live_epochs():
            for rank in range(N):
                data, _ = service.chain_restore("a", rank, epoch)
                assert data.to_bytes() == snapshots[epoch].build_dataset(
                    rank, N
                ).to_bytes()

    def test_chain_gc_never_breaks_another_tenants_dump(self):
        service = make_service()
        service.register_tenant("a")
        service.register_tenant("b")
        grow_chain(service, "a", make_workload(seed=7), deltas=1)
        ticket = service.submit("b", make_workload(seed=7))
        service.drain()
        outcome = service.outcome(ticket)
        while service.chain_of("a").live_epochs():
            service.chain_gc("a")
        for rank in range(N):
            service.restore("b", rank, outcome.tenant_dump_id)

    def test_isolation_audit_covers_chain_manifests(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        assert not service.isolation_audit()


class TestBrokenChainSurfacing:
    def test_restore_of_pruned_epoch_raises_typed_error(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        pruned = service.chain_gc("a").epoch
        with pytest.raises(ChainStateError):
            service.chain_restore("a", 0, pruned)

    def test_lost_parent_chunks_raise_chain_broken_error(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        manager = service.chain_of("a")
        # destroy every replica of the base full's chunks out-of-band
        base = manager.nodes[0]
        for fps in base.fps:
            for fp in fps:
                for node in service.cluster.nodes:
                    node.chunks.discard(fp)
        with pytest.raises(ChainBrokenError):
            service.chain_restore("a", 0, 2)


class TestObservability:
    def test_chain_ops_land_on_the_timeline(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        service.chain_restore("a", 0, 2)
        service.chain_gc("a")
        ops = [
            s.op for s in service.timeline.samples()
            if s.values.get("chain")
        ]
        assert ops.count("dump") == 3
        assert "restore" in ops
        assert "gc" in ops

    def test_chain_metrics_are_exported(self):
        service = make_service()
        service.register_tenant("a")
        grow_chain(service, "a", make_workload(), deltas=2)
        service.chain_restore("a", 1, 1)
        service.chain_gc("a")
        service.chain_compact("a")
        snap = service.capture_metrics()
        counters = snap["metrics"]["counters"]
        assert counters["svc_chain_dumps_completed"]["max"] == 3
        assert counters["svc_chain_restores_completed"]["max"] == 1
        assert counters["svc_chain_epochs_pruned"]["max"] == 1
        assert counters["svc_chain_epochs_compacted"]["max"] == 1
        gauges = snap["metrics"]["gauges"]
        assert 0.0 < gauges["svc_chain_delta_fraction"]["max"] < 1.0
