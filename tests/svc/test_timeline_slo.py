"""The service's telemetry timeline and SLO surface, end to end:
every operation lands a tick-tagged sample, sketches feed the report and
dashboard, and an attached SLO engine fires deterministically."""

import pytest

from repro.core.config import DumpConfig
from repro.obs.schema import validate_run, validate_slo, validate_timeline
from repro.obs.slo import SLOEngine
from repro.svc import (
    CheckpointService,
    TenantWorkload,
    build_report,
    format_service_report,
    format_top,
)

N = 4
CS = 64


def make_service(**kwargs):
    kwargs.setdefault("config", DumpConfig(replication_factor=2, chunk_size=CS))
    kwargs.setdefault("shard_count", 8)
    return CheckpointService(N, **kwargs)


def tenant_workload(i, overlap=0.5, dump_index=0):
    return TenantWorkload(
        i,
        overlap=overlap,
        chunks_per_rank=16,
        chunk_size=CS,
        dump_index=dump_index,
    )


def run_all_ops(service):
    """One of everything: dump, restore, repair, gc (two tenants)."""
    service.register_tenant("alice")
    service.register_tenant("bob")
    for i, tenant in enumerate(("alice", "bob")):
        service.submit(tenant, tenant_workload(i, dump_index=i))
    service.drain()
    service.restore("alice", 0, 0)
    service.cluster.fail_node(1)
    service.repair()
    # Dumps need every node up unless the config is degraded; model the
    # node rejoining after repair before submitting more work.
    service.cluster.revive_all()
    service.submit("bob", tenant_workload(1, dump_index=2))
    service.drain()
    service.gc("bob", 0)
    return service


class TestTimelineFeed:
    def test_every_operation_lands_a_sample(self):
        service = run_all_ops(make_service())
        counts = service.timeline.op_counts()
        assert counts["dump"] == 3
        assert counts["restore"] == 1
        assert counts["repair"] == 1
        assert counts["gc"] == 1

    def test_dump_samples_are_tagged_and_tick_stamped(self):
        service = make_service()
        service.register_tenant("alice")
        service.submit("alice", tenant_workload(0))
        service.drain()
        (sample,) = service.timeline.samples(op="dump")
        assert sample.tenant == "alice"
        assert sample.backend == service.backend
        assert sample.tick == service.tick
        for key in ("latency_s", "queue_wait_ticks", "dedup_ratio",
                    "load_skew", "bytes_moved", "new_chunks"):
            assert key in sample.values

    def test_restore_sample_carries_locality(self):
        service = run_all_ops(make_service())
        (sample,) = service.timeline.samples(op="restore")
        assert 0.0 <= sample.values["locality"] <= 1.0
        assert sample.values["bytes"] > 0
        sk = service.timeline.sketch("restore", "locality")
        assert sk is not None and sk.count == 1

    def test_restore_metrics_cover_the_read_path(self):
        service = run_all_ops(make_service())
        metrics = service.trace.metrics
        assert metrics.counters["svc_restores_completed"].value == 1
        assert metrics.counters["svc_restore_bytes"].value > 0
        assert metrics.sketches["svc_restore_latency_sketch"].count == 1
        assert 0.0 <= metrics.gauges["svc_restore_locality"].value <= 1.0

    def test_disabled_timeline_records_nothing(self):
        service = run_all_ops(make_service(timeline_capacity=0))
        assert len(service.timeline) == 0
        assert service.timeline.recorded == 0

    def test_timeline_document_validates(self):
        service = run_all_ops(make_service())
        validate_timeline(service.timeline.as_dict())

    def test_capture_metrics_embeds_timeline_meta(self):
        service = run_all_ops(make_service())
        snapshot = service.capture_metrics()
        validate_run(snapshot)
        tl = snapshot["meta"]["timeline"]
        assert tl["recorded"] == service.timeline.recorded
        assert tl["ops"] == service.timeline.op_counts()


class TestServiceSLO:
    def attach(self, service, threshold=1):
        engine = SLOEngine(
            objectives=(f"dump.queue_wait_ticks.p95 < {threshold}",),
            windows=((4, 1.0), (2, 1.0)),
            min_samples=2,
        )
        service.attach_slo(engine)
        return engine

    def congest(self, service, n=4):
        """Queue several dumps at once so later ones accumulate wait."""
        service.register_tenant("alice")
        for i in range(n):
            service.submit("alice", tenant_workload(0, dump_index=i))
        service.drain()

    def test_congested_queue_fires_the_wait_objective(self):
        service = make_service()
        engine = self.attach(service)
        self.congest(service)
        assert any(a["event"] == "fire" for a in engine.alerts)
        verdict = engine.verdict(service.timeline)
        validate_slo(verdict)
        assert verdict["ok"] is False

    def test_idle_ticks_advance_the_engine(self):
        service = make_service()
        engine = self.attach(service)
        self.congest(service)
        tick = service.tick
        for _ in range(6):
            service.tick_idle()
        assert service.tick == tick + 6
        assert engine.last_tick == service.tick

    def test_replay_equals_live_alerts(self):
        service = make_service()
        engine = self.attach(service)
        self.congest(service)
        for _ in range(4):
            service.tick_idle()
        assert service.timeline.dropped == 0
        assert engine.replay(service.timeline) == engine.alerts

    def test_report_surfaces_the_slo_section(self):
        service = make_service()
        self.attach(service)
        self.congest(service)
        report = build_report(service)
        assert report.slo is not None
        text = format_service_report(report)
        assert "slo:" in text
        assert "fire" in text

    def test_format_top_shows_firing_state(self):
        service = make_service()
        self.attach(service)
        self.congest(service)
        text = format_top(service)
        assert text.startswith("top · ")
        assert "wait p50/p95/p99=" in text
        assert "slo=FIRING:dump.queue_wait_ticks.p95" in text

    def test_format_top_without_slo(self):
        service = make_service()
        self.congest(service)
        assert "slo=" not in format_top(service)
