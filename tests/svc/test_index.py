"""Global dedup index: reference counting and attribution policies."""

import hashlib

import pytest

from repro.svc import GlobalDedupIndex


def fp(i):
    return hashlib.sha1(b"chunk-%d" % i).digest()


class TestRefCounting:
    def test_first_record_is_new_later_records_are_hits(self):
        index = GlobalDedupIndex()
        assert index.record("a", fp(0), 100) is True
        assert index.record("b", fp(0), 100) is False
        assert index.record("a", fp(0), 100) is False
        entry = index.get(fp(0))
        assert entry.first_writer == "a"
        assert entry.refs == {"a": 2, "b": 1}
        assert entry.total_refs == 3
        assert entry.tenants == ["a", "b"]

    def test_release_drops_entry_only_at_zero_total(self):
        index = GlobalDedupIndex()
        index.record("a", fp(0), 100)
        index.record("b", fp(0), 100)
        remaining, others = index.release("a", fp(0))
        assert (remaining, others) == (1, True)
        assert index.has(fp(0))
        remaining, others = index.release("b", fp(0))
        assert (remaining, others) == (0, False)
        assert not index.has(fp(0))

    def test_release_of_unknown_chunk_is_harmless(self):
        index = GlobalDedupIndex()
        assert index.release("a", fp(9)) == (0, False)

    def test_sharding_preserves_every_entry(self):
        for shard_count in (1, 2, 8):
            index = GlobalDedupIndex(shard_count=shard_count)
            for i in range(32):
                index.record("a", fp(i), 10)
            assert len(index) == 32
            assert sorted(f for f, _e in index.items()) == sorted(
                fp(i) for i in range(32)
            )


class TestAccounting:
    def make_index(self):
        """a and b share chunk 0; a owns 1 alone; b owns 2 alone."""
        index = GlobalDedupIndex()
        index.record("a", fp(0), 100)
        index.record("b", fp(0), 100)
        index.record("a", fp(1), 30)
        index.record("b", fp(2), 50)
        return index

    def test_footprint_views(self):
        index = self.make_index()
        assert index.unique_bytes == 180
        assert index.referenced_bytes("a") == 130
        assert index.referenced_bytes("b") == 150
        assert index.shared_bytes("a") == 100
        assert index.shared_bytes("b") == 100
        assert index.cross_tenant_shared_bytes == 100

    @pytest.mark.parametrize("policy", ["first-writer", "split"])
    def test_charges_always_sum_to_unique_bytes(self, policy):
        index = self.make_index()
        charged = index.charged_bytes(["a", "b"], policy=policy)
        assert sum(charged.values()) == pytest.approx(index.unique_bytes)

    def test_first_writer_pays_for_shared_chunks(self):
        charged = self.make_index().charged_bytes(
            ["a", "b"], policy="first-writer"
        )
        assert charged == {"a": 130.0, "b": 50.0}

    def test_split_divides_shared_chunks_evenly(self):
        charged = self.make_index().charged_bytes(["a", "b"], policy="split")
        assert charged == {"a": 80.0, "b": 100.0}

    def test_first_writer_bill_falls_to_a_sharer_after_gc(self):
        index = self.make_index()
        index.release("a", fp(0))
        charged = index.charged_bytes(["a", "b"], policy="first-writer")
        assert charged == {"a": 30.0, "b": 150.0}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            self.make_index().charged_bytes(["a"], policy="auction")
