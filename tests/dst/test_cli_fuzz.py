"""The ``repro-eval fuzz`` subcommand: sources, exit codes, artifacts."""

import json

import pytest

from repro.cli import main
from repro.dst import Scenario, load_scenario


def run_cli(argv):
    """main() returns 0/2; a failing fuzz run raises SystemExit(1)."""
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code


class TestSources:
    def test_seed_run_is_clean(self, capsys, tmp_path):
        out = str(tmp_path / "verdict.json")
        assert run_cli(["fuzz", "--seed", "3", "--out", out]) == 0
        text = capsys.readouterr().out
        assert "seed 3: ok" in text
        doc = json.loads(open(out).read())
        assert doc["ok"] is True
        assert len(doc["runs"]) == 1

    def test_runs_window(self, capsys):
        assert run_cli(["fuzz", "--seed", "0", "--runs", "3"]) == 0
        text = capsys.readouterr().out
        assert "seed 0: ok" in text
        assert "seed 2: ok" in text

    def test_corpus_replay(self, capsys):
        assert run_cli(["fuzz", "--corpus"]) == 0
        text = capsys.readouterr().out
        assert "seed-0003.json: ok" in text

    def test_replay_file(self, capsys, tmp_path):
        from repro.dst import save_scenario

        path = str(tmp_path / "case.json")
        save_scenario(path, Scenario(seed=4, n_ranks=3, k=2,
                                     chunks_per_rank=3))
        assert run_cli(["fuzz", "--replay", path]) == 0
        assert f"{path}: ok" in capsys.readouterr().out

    def test_exactly_one_source_required(self, capsys):
        assert run_cli(["fuzz"]) == 2
        assert run_cli(["fuzz", "--seed", "1", "--corpus"]) == 2

    def test_unknown_flag_exits_2(self):
        assert run_cli(["fuzz", "--seed", "1", "--frobnicate"]) == 2


class TestDeterminism:
    def test_same_seed_identical_verdict_files(self, tmp_path):
        """Acceptance criterion: two runs of the same seed write
        byte-identical verdict documents."""
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert run_cli(["fuzz", "--seed", "12", "--out", a]) == 0
        assert run_cli(["fuzz", "--seed", "12", "--out", b]) == 0
        assert open(a, "rb").read() == open(b, "rb").read()


class TestFailurePath:
    @pytest.fixture()
    def failing_run(self, capsys, tmp_path):
        shrunk = str(tmp_path / "shrunk.json")
        code = run_cli([
            "fuzz", "--seed", "12", "--inject-bug", "drop-replica",
            "--scenario-out", shrunk,
        ])
        return code, shrunk, capsys.readouterr().out

    def test_injected_bug_exits_1(self, failing_run):
        code, _shrunk, text = failing_run
        assert code == 1
        assert "FAIL" in text and "[replication]" in text

    def test_shrunk_scenario_written_and_replayable(self, failing_run):
        code, shrunk, _text = failing_run
        assert code == 1
        minimal = load_scenario(shrunk)
        assert minimal.n_ranks <= 4
        assert minimal.crash_count <= 2
        # the artifact replays: clean without the bug, failing with it
        assert run_cli(["fuzz", "--replay", shrunk]) == 0
        assert run_cli([
            "fuzz", "--replay", shrunk, "--inject-bug", "drop-replica",
            "--no-shrink", "--scenario-out", shrunk + ".again",
        ]) == 1

    def test_trace_export(self, capsys, tmp_path):
        from repro.obs.analyzer import load_run

        trace = str(tmp_path / "run.json")
        assert run_cli(["fuzz", "--seed", "3", "--trace", trace]) == 0
        run = load_run(trace)  # schema-validates on load
        assert run["meta"]["source"] == "fuzz"
        assert sum(len(e["spans"]) for e in run["ranks"]) > 0

    def test_trace_needs_single_scenario(self, capsys, tmp_path):
        trace = str(tmp_path / "run.json")
        assert run_cli(
            ["fuzz", "--seed", "0", "--runs", "2", "--trace", trace]
        ) == 2
