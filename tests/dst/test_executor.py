"""Scenario execution: determinism, the replica ledger, verdicts."""

import json

from repro.dst import (
    ReplicaLedger,
    Scenario,
    Step,
    VERDICT_SCHEMA_ID,
    execute_scenario,
    generate_scenario,
    run_scenario,
)
from repro.dst.executor import cluster_digest


def small_scenario(**changes):
    base = Scenario(seed=5, n_ranks=3, k=2, chunks_per_rank=3)
    return base.with_(**changes) if changes else base


class TestDeterminism:
    def test_same_seed_identical_verdicts(self):
        """The acceptance bar: two runs of the same seed are bit-identical
        down to the serialized verdict document."""
        for seed in (0, 5, 12):
            a = run_scenario(generate_scenario(seed))
            b = run_scenario(generate_scenario(seed))
            assert a.verdict_json() == b.verdict_json()
            assert a.cluster_digest == b.cluster_digest
            assert a.reports_digest == b.reports_digest

    def test_verdict_is_serializable_and_tagged(self):
        result = run_scenario(small_scenario())
        doc = json.loads(result.verdict_json())
        assert doc["schema"] == VERDICT_SCHEMA_ID
        assert doc["ok"] is True
        assert doc["seed"] == 5

    def test_digest_reflects_cluster_content(self):
        r1 = run_scenario(small_scenario())
        r2 = run_scenario(small_scenario(chunks_per_rank=4))
        assert r1.cluster_digest != r2.cluster_digest


class TestExecution:
    def test_healthy_dump_upholds_invariants(self):
        result = run_scenario(small_scenario())
        assert result.ok, result.violations
        assert [s["op"] for s in result.steps] == ["dump"]

    def test_crash_and_repair_loop(self):
        s = small_scenario(
            n_ranks=4,
            k=3,
            degraded=True,
            steps=(
                Step("dump"),
                Step("crash", node=1),
                Step("dump"),
                Step("repair"),
                Step("dump"),
            ),
        )
        result = run_scenario(s)
        assert result.ok, result.violations
        assert [step["op"] for step in result.steps] == [
            "dump", "crash", "dump", "repair", "dump",
        ]

    def test_repeated_crash_of_dead_node_is_noop(self):
        s = small_scenario(
            n_ranks=4,
            k=2,
            degraded=True,
            steps=(
                Step("dump"),
                Step("crash", node=2),
                Step("crash", node=2),
                Step("dump"),
            ),
        )
        result = run_scenario(s)
        assert result.ok, result.violations
        crash_steps = [st for st in result.steps if st["op"] == "crash"]
        assert crash_steps[0]["noop"] is False
        assert crash_steps[1]["noop"] is True

    def test_backend_override(self):
        s = small_scenario()
        thread = execute_scenario(s, backend="thread")
        process = execute_scenario(s, backend="process")
        assert thread.ok and process.ok
        assert thread.cluster_digest == process.cluster_digest


class TestReplicaLedger:
    def test_dump_sets_floor_to_k_eff(self):
        ledger = ReplicaLedger(k_eff=3)
        ledger.record_dump(0, [True, True, True, True])
        assert all(ledger.floors[(0, r)] == 3 for r in range(4))

    def test_death_costs_one_replica_everywhere(self):
        ledger = ReplicaLedger(k_eff=3)
        ledger.record_dump(0, [True] * 4)
        ledger.record_death()
        assert all(ledger.floors[(0, r)] == 2 for r in range(4))

    def test_floor_never_goes_negative(self):
        ledger = ReplicaLedger(k_eff=1)
        ledger.record_dump(0, [True, True])
        ledger.record_death()
        ledger.record_death()
        assert all(f == 0 for f in ledger.floors.values())

    def test_dead_rank_dump_gets_reduced_floor(self):
        ledger = ReplicaLedger(k_eff=3)
        ledger.record_dump(0, [True, False, True, True])
        assert ledger.floors[(0, 0)] == 3
        assert ledger.floors[(0, 1)] == 2  # its own store is gone


class TestMultiTenantExecution:
    def make_scenario(self, **changes):
        base = Scenario(
            seed=9, n_ranks=3, k=2, chunks_per_rank=4,
            tenants=2, tenant_overlap=0.5, shard_count=2,
            steps=(
                Step("dump", tenant=0),
                Step("dump", tenant=1),
                Step("gc", tenant=0),
                Step("dump", tenant=0),
            ),
        )
        return base.with_(**changes) if changes else base

    def test_svc_path_runs_the_service_oracles(self):
        result = execute_scenario(self.make_scenario())
        assert result.ok, [v.as_dict() for v in result.violations]
        dump_steps = [s for s in result.steps if s["op"] == "dump"]
        assert [s["tenant"] for s in dump_steps] == ["t0", "t1", "t0"]
        for step in result.steps:
            assert "tenant-isolation" in step["invariants_checked"]
            assert "cross-tenant-accounting" in step["invariants_checked"]

    def test_gc_step_reports_cross_tenant_retention(self):
        # overlap=1.0 makes every dump the common base state, so t1's
        # earlier dump pins every chunk t0's GC walks.
        result = execute_scenario(self.make_scenario(tenant_overlap=1.0))
        (gc_step,) = [s for s in result.steps if s["op"] == "gc"]
        assert gc_step["tenant"] == "t0"
        # overlap keeps t1's shared chunks alive through t0's GC.
        assert gc_step["chunks_retained"] > 0
        assert gc_step["retained_cross_tenant"] > 0

    def test_svc_path_is_deterministic(self):
        scenario = self.make_scenario()
        a = execute_scenario(scenario)
        b = execute_scenario(scenario)
        assert a.verdict_json() == b.verdict_json()

    def test_svc_path_matches_across_backends(self):
        scenario = self.make_scenario(differential=True)
        result = run_scenario(scenario)
        assert result.ok, [v.as_dict() for v in result.violations]

    def test_bug_injection_still_caught_with_tenants(self):
        result = execute_scenario(self.make_scenario(), bug="drop-replica")
        assert not result.ok
        assert any(
            v.invariant == "replication" for v in result.violations
        )


class TestClusterDigest:
    def test_digest_changes_with_mutation(self):
        from repro.storage.local_store import Cluster

        cluster = Cluster(2)
        before = cluster_digest(cluster)
        cluster.nodes[0].chunks.put(b"\x07" * 20, b"payload")
        assert cluster_digest(cluster) != before

    def test_digest_sees_liveness(self):
        from repro.storage.local_store import Cluster

        cluster = Cluster(2)
        before = cluster_digest(cluster)
        cluster.nodes[1].alive = False
        assert cluster_digest(cluster) != before


class TestBurstyArrival:
    def make_scenario(self, **changes):
        base = Scenario(
            seed=13, n_ranks=3, k=2, chunks_per_rank=4,
            tenants=2, tenant_overlap=0.5, shard_count=2,
            arrival="bursty",
            steps=(
                Step("dump", tenant=0),
                Step("dump", tenant=1),
                Step("dump", tenant=0),
                Step("tick"),
                Step("tick"),
                Step("dump", tenant=1),
            ),
        )
        return base.with_(**changes) if changes else base

    def test_bursty_run_upholds_invariants(self):
        result = execute_scenario(self.make_scenario())
        assert result.ok, [v.as_dict() for v in result.violations]
        assert result.slo is not None
        assert "slo-determinism" in result.steps[-1]["invariants_checked"]

    def test_burst_accumulates_queue_wait(self):
        result = execute_scenario(self.make_scenario())
        dump_steps = [s for s in result.steps if s["op"] == "dump"]
        # The whole run is submitted up front, so later dumps in the
        # burst waited in the admission queue.
        assert max(s["wait_ticks"] for s in dump_steps) > 0
        # All four dumps executed exactly once despite batch submission.
        assert len(dump_steps) == 4

    def test_tick_steps_advance_the_clock(self):
        result = execute_scenario(self.make_scenario())
        tick_steps = [s for s in result.steps if s["op"] == "tick"]
        assert len(tick_steps) == 2
        assert tick_steps[1]["tick"] > tick_steps[0]["tick"]

    def test_bursty_is_deterministic(self):
        scenario = self.make_scenario()
        a = execute_scenario(scenario)
        b = execute_scenario(scenario)
        assert a.verdict_json() == b.verdict_json()

    def test_bursty_matches_across_backends(self):
        result = run_scenario(self.make_scenario(differential=True))
        assert result.ok, [v.as_dict() for v in result.violations]

    def test_verdict_carries_the_slo_document(self):
        result = execute_scenario(self.make_scenario())
        doc = json.loads(result.verdict_json())
        assert doc["slo"]["schema"] == "repro.obs/slo/v1"
        assert doc["slo"]["ticks"] > 0

    def test_steady_multi_tenant_still_has_slo_verdict(self):
        result = execute_scenario(
            self.make_scenario(
                arrival="steady",
                steps=(
                    Step("dump", tenant=0),
                    Step("dump", tenant=1),
                ),
            )
        )
        assert result.ok
        assert result.slo is not None
        assert result.slo["ok"] is True
