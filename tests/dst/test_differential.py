"""Thread-vs-process differential execution.

Same seed, both SPMD backends: identical cluster digests, identical
normalized reports, identical invariant verdicts.  This is the oracle
that keeps the fork/shared-memory backend honest against the reference
thread implementation under crashes and repairs, not just healthy dumps.
"""

from repro.dst import (
    Scenario,
    Step,
    differential_check,
    execute_scenario,
    generate_scenario,
    run_scenario,
)


def test_backends_agree_on_healthy_dump():
    s = Scenario(seed=8, n_ranks=3, k=2, chunks_per_rank=3)
    thread = execute_scenario(s, backend="thread")
    process = execute_scenario(s, backend="process")
    assert differential_check(thread, process) == []


def test_backends_agree_under_mid_dump_crash():
    from repro.dst import MidDumpCrash

    s = Scenario(
        seed=8,
        n_ranks=4,
        k=3,
        degraded=True,
        steps=(
            Step("dump"),
            Step("dump", crash=MidDumpCrash(node=2, phase="write")),
            Step("repair"),
        ),
    )
    thread = execute_scenario(s, backend="thread")
    process = execute_scenario(s, backend="process")
    assert thread.ok and process.ok
    assert differential_check(thread, process) == []


def test_differential_scenario_runs_both_backends():
    s = Scenario(seed=8, n_ranks=3, k=2, chunks_per_rank=3,
                 differential=True)
    result = run_scenario(s)
    assert result.ok
    assert result.backend == "thread"
    # ... and agrees with an explicit run on either backend
    assert result.cluster_digest == execute_scenario(
        s, backend="process"
    ).cluster_digest


def test_divergence_is_reported():
    """Tampering with one side's digest must produce a differential
    violation — the comparison is not vacuous."""
    s = Scenario(seed=8, n_ranks=3, k=2, chunks_per_rank=3)
    thread = execute_scenario(s, backend="thread")
    process = execute_scenario(s, backend="process")
    process.cluster_digest = "0" * 64
    out = differential_check(thread, process)
    assert out and out[0].invariant == "differential"


def test_generated_differential_seeds_stay_green():
    ran = 0
    for seed in range(40):
        scenario = generate_scenario(seed)
        if not scenario.differential:
            continue
        result = run_scenario(scenario)
        assert result.ok, [v.as_dict() for v in result.violations]
        ran += 1
        if ran == 3:
            break
    assert ran == 3
