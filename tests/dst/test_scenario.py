"""Scenario values: validation, canonical JSON, round-trips."""

import pytest

from repro.dst import (
    MidDumpCrash,
    SCENARIO_SCHEMA_ID,
    Scenario,
    ScenarioError,
    Step,
    WorkloadSpec,
    load_scenario,
    save_scenario,
)


def scenario(**changes):
    base = Scenario(
        seed=1,
        degraded=True,
        steps=(Step("dump"), Step("crash", node=1), Step("repair")),
    )
    return base.with_(**changes) if changes else base


class TestValidation:
    def test_valid_scenario_builds(self):
        s = scenario()
        assert s.n_dumps == 1
        assert s.crash_count == 1
        assert s.k_eff == min(s.k, s.n_ranks)

    def test_needs_at_least_one_dump(self):
        with pytest.raises(ScenarioError):
            scenario(steps=(Step("crash", node=0),))

    def test_crash_node_must_be_in_range(self):
        with pytest.raises(ScenarioError):
            scenario(steps=(Step("dump"), Step("crash", node=99)))

    def test_crashes_require_degraded_mode(self):
        with pytest.raises(ScenarioError):
            scenario(degraded=False)

    def test_parity_rejects_crashes(self):
        with pytest.raises(ScenarioError):
            scenario(redundancy="parity")

    def test_mid_dump_crash_phase_checked(self):
        with pytest.raises(ScenarioError):
            scenario(steps=(
                Step("dump", crash=MidDumpCrash(node=1, phase="allgather")),
            ))

    def test_tiny_worlds_rejected(self):
        with pytest.raises(ScenarioError):
            scenario(n_ranks=1)

    def test_bad_op_rejected(self):
        with pytest.raises(ScenarioError):
            scenario(steps=(Step("dump"), Step("explode")))

    def test_multi_tenant_fields_validated(self):
        ok = scenario(
            tenants=2,
            steps=(Step("dump", tenant=0), Step("dump", tenant=1),
                   Step("gc", tenant=1)),
        )
        assert ok.tenants == 2
        with pytest.raises(ScenarioError):
            scenario(tenants=0)
        with pytest.raises(ScenarioError):
            scenario(shard_count=0)
        with pytest.raises(ScenarioError):
            scenario(tenants=2, tenant_overlap=1.5)
        # A dump step may not name a tenant outside the tenant count.
        with pytest.raises(ScenarioError):
            scenario(tenants=2, steps=(Step("dump", tenant=5),))

    def test_gc_requires_multi_tenancy(self):
        with pytest.raises(ScenarioError):
            scenario(steps=(Step("dump"), Step("gc")))

    def test_multi_tenancy_excludes_repeat_mode(self):
        with pytest.raises(ScenarioError):
            scenario(
                tenants=2, workload_mode="repeat",
                steps=(Step("dump", tenant=0),),
            )

    def test_tenant_workloads_share_only_shared_dumps(self):
        s = scenario(
            tenants=2, tenant_overlap=1.0,
            steps=(Step("dump", tenant=0), Step("dump", tenant=1)),
        )
        a = s.make_workload(0, tenant=0).build_dataset(0, s.n_ranks)
        b = s.make_workload(0, tenant=1).build_dataset(0, s.n_ranks)
        assert a.to_bytes() == b.to_bytes()  # shared dump: same base state
        none_shared = s.with_(tenant_overlap=0.0)
        a = none_shared.make_workload(0, tenant=0).build_dataset(0, 3)
        b = none_shared.make_workload(0, tenant=1).build_dataset(0, 3)
        assert a.to_bytes() != b.to_bytes()


class TestSerialization:
    def test_json_round_trip(self):
        s = scenario(
            compress="zlib-1",
            workload=WorkloadSpec(frac_global=0.5),
            steps=(
                Step("dump", crash=MidDumpCrash(node=2, phase="write")),
                Step("repair"),
            ),
        )
        assert Scenario.from_json(s.to_json()) == s

    def test_json_is_canonical(self):
        s = scenario()
        text = s.to_json()
        assert text == Scenario.from_json(text).to_json()
        assert f'"schema": "{SCENARIO_SCHEMA_ID}"' in text
        assert text.endswith("\n")

    def test_schema_id_checked(self):
        doc = '{"schema": "something/else/v9", "seed": 1}'
        with pytest.raises(ScenarioError):
            Scenario.from_json(doc)

    def test_file_round_trip(self, tmp_path):
        s = scenario()
        path = str(tmp_path / "s.json")
        save_scenario(path, s)
        assert load_scenario(path) == s

    def test_with_replaces_and_revalidates(self):
        s = scenario()
        assert s.with_(k=5).k == 5
        with pytest.raises(ScenarioError):
            s.with_(n_ranks=0)


class TestArrival:
    def multi(self, **changes):
        base = scenario(
            degraded=False,
            steps=(
                Step("dump", tenant=0),
                Step("tick"),
                Step("dump", tenant=1),
            ),
            tenants=2,
            tenant_overlap=0.5,
            workload_mode="fresh",
            arrival="bursty",
        )
        return base.with_(**changes) if changes else base

    def test_bursty_multi_tenant_builds(self):
        s = self.multi()
        assert s.arrival == "bursty"

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ScenarioError, match="arrival"):
            self.multi(arrival="poisson")

    def test_bursty_requires_multi_tenancy(self):
        with pytest.raises(ScenarioError, match="multi-tenant"):
            scenario(arrival="bursty")

    def test_arrival_round_trips_through_json(self):
        s = self.multi()
        assert Scenario.from_json(s.to_json()) == s

    def test_arrival_defaults_to_steady_for_old_documents(self):
        doc = scenario().as_dict()
        doc.pop("arrival")
        assert Scenario.from_dict(doc).arrival == "steady"
