"""Shrinking and mutation testing.

The mutation test is the fuzzer's own acceptance test: a deliberately
injected replication-count bug (one replica of a shared chunk silently
dropped after the dump) must be *caught* by the oracles and *shrunk* to a
minimal scenario — no more than 4 ranks and 2 crash events.
"""

from repro.dst import (
    Scenario,
    Step,
    generate_scenario,
    run_scenario,
    shrink,
)


def failing_predicate(bug):
    def still_fails(scenario):
        return not run_scenario(scenario, bug=bug).ok
    return still_fails


class TestMutation:
    def test_drop_replica_bug_is_caught(self):
        result = run_scenario(generate_scenario(12), bug="drop-replica")
        assert not result.ok
        assert any(v.invariant == "replication" for v in result.violations)

    def test_bug_step_records_what_was_dropped(self):
        result = run_scenario(generate_scenario(12), bug="drop-replica")
        dump_steps = [s for s in result.steps if s["op"] == "dump"]
        assert any("bug" in s for s in dump_steps)

    def test_drop_replica_shrinks_to_minimal_scenario(self):
        base = generate_scenario(12)
        out = shrink(base, failing_predicate("drop-replica"))
        minimal = out.scenario
        assert not run_scenario(minimal, bug="drop-replica").ok
        # the acceptance bar from the issue: <= 4 ranks, <= 2 crash events
        assert minimal.n_ranks <= 4
        assert minimal.crash_count <= 2
        # this particular bug needs no crash at all and only two ranks
        assert minimal.n_ranks == 2
        assert minimal.crash_count == 0
        assert minimal.n_dumps == 1

    def test_shrink_is_deterministic(self):
        base = generate_scenario(12)
        a = shrink(base, failing_predicate("drop-replica"))
        b = shrink(base, failing_predicate("drop-replica"))
        assert a.scenario == b.scenario
        assert a.evaluations == b.evaluations


class TestShrinker:
    def test_passing_scenario_shrinks_to_itself(self):
        base = generate_scenario(3)
        out = shrink(base, lambda s: False)
        assert out.scenario == base
        assert out.accepted == 0

    def test_result_of_shrink_still_fails(self):
        base = generate_scenario(12)
        out = shrink(base, failing_predicate("drop-replica"))
        assert failing_predicate("drop-replica")(out.scenario)

    def test_evaluation_budget_respected(self):
        base = generate_scenario(12)
        out = shrink(
            base, failing_predicate("drop-replica"), max_evaluations=5
        )
        assert out.evaluations <= 5

    def test_crash_steps_are_dropped_first(self):
        """A predicate that fails regardless of crashes must see every
        crash/repair step removed from the minimized scenario."""
        base = Scenario(
            seed=9,
            n_ranks=4,
            k=2,
            degraded=True,
            steps=(
                Step("dump"),
                Step("crash", node=1),
                Step("repair"),
                Step("dump"),
            ),
        )
        out = shrink(base, lambda s: True)
        assert out.scenario.crash_count == 0
        assert all(step.op == "dump" for step in out.scenario.steps)
