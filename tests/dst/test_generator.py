"""Seed -> scenario generation: bit-determinism and validity."""

from repro.dst import MidDumpCrash, Scenario, generate_scenario


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        for seed in range(20):
            assert generate_scenario(seed) == generate_scenario(seed)

    def test_same_seed_same_json(self):
        for seed in range(20):
            assert (generate_scenario(seed).to_json()
                    == generate_scenario(seed).to_json())

    def test_different_seeds_differ(self):
        texts = {generate_scenario(seed).to_json() for seed in range(30)}
        assert len(texts) > 20  # near-total diversity over a small window


class TestValidity:
    def test_generated_scenarios_validate(self):
        """Construction runs the full Scenario validation; surviving it for
        a wide seed window means the generator never emits an illegal
        combination (parity+crash, crash without degraded, ...)."""
        for seed in range(200):
            s = generate_scenario(seed)
            assert isinstance(s, Scenario)
            assert s.seed == seed

    def test_crash_budget_respected(self):
        """Crashes between repairs never exceed K_eff - 1, so scenarios
        stay within the paper's survivability envelope by construction."""
        for seed in range(200):
            s = generate_scenario(seed)
            window = 0
            for step in s.steps:
                if step.op == "repair":
                    window = 0
                elif step.op == "crash":
                    window += 1
                elif step.crash is not None:
                    window += 1
                assert window <= s.k_eff - 1 or s.k_eff == 1

    def test_feature_matrix_reachable(self):
        """Every interesting feature shows up somewhere in a 200-seed
        window — the generator does not silently stop exploring a mode."""
        seen = set()
        for seed in range(200):
            s = generate_scenario(seed)
            if s.redundancy == "parity":
                seen.add("parity")
            if s.workload_mode == "repeat":
                seen.add("repeat")
            if s.differential:
                seen.add("differential")
            if not s.batched:
                seen.add("legacy")
            if s.compress:
                seen.add("compress")
            if any(st.op == "crash" for st in s.steps):
                seen.add("crash")
            if any(isinstance(st.crash, MidDumpCrash) for st in s.steps):
                seen.add("mid-dump")
            if any(st.op == "repair" for st in s.steps):
                seen.add("repair")
            if s.strategy != "coll-dedup":
                seen.add("baseline-strategy")
            if s.pipelined:
                seen.add("pipelined")
            if s.integrity == "fast":
                seen.add("fast-integrity")
            if s.pipelined and s.integrity == "fast":
                seen.add("pipelined-fast")
            if s.tenants > 1:
                seen.add("multi-tenant")
            if s.tenants > 1 and any(st.op == "gc" for st in s.steps):
                seen.add("tenant-gc")
            if s.shard_count > 1:
                seen.add("sharded")
        assert seen == {
            "parity", "repeat", "differential", "legacy", "compress",
            "crash", "mid-dump", "repair", "baseline-strategy",
            "pipelined", "fast-integrity", "pipelined-fast",
            "multi-tenant", "tenant-gc", "sharded",
        }

    def test_tenant_gc_steps_always_have_a_live_dump(self):
        """A generated ``gc`` step always follows an earlier dump by the
        same tenant that no previous gc already collected — the executor
        never hits the noop path on generated scenarios."""
        for seed in range(200):
            s = generate_scenario(seed)
            if s.tenants <= 1:
                assert all(st.op != "gc" for st in s.steps)
                continue
            live = {t: 0 for t in range(s.tenants)}
            for st in s.steps:
                if st.op == "dump":
                    live[st.tenant] += 1
                elif st.op == "gc":
                    assert live[st.tenant] > 0
                    live[st.tenant] -= 1

    def test_pipelined_scenarios_always_engage(self):
        """The generator only sets ``pipelined=True`` on configs where the
        dump actually takes the pipelined path (batched replication, not
        degraded) — the knob is never decorative."""
        for seed in range(200):
            s = generate_scenario(seed)
            if s.pipelined:
                assert s.batched
                assert not s.degraded
                assert s.redundancy == "replication"
