"""The dst chain dimension: generator draws, executor loop, chain
invariants, differential determinism and shrinker support.

Chain scenarios replace the plain dump schedule with an incremental
checkpoint chain: one base full, mostly-delta epochs over an
epoch-evolving workload, prune/compact maintenance and the same
crash/repair machinery as the base loop.  The invariant battery swaps the
per-dump restore check (a chain delta is not independently restorable by
design) for three chain oracles: restore-to-any-epoch byte-equality
against the per-epoch workload oracle, refcount conservation and
structural integrity.
"""

import pytest

from repro.dst.executor import (
    differential_check,
    execute_scenario,
    run_scenario,
)
from repro.dst.generator import generate_scenario
from repro.dst.scenario import Scenario, ScenarioError, Step
from repro.dst.shrinker import shrink

pytestmark = pytest.mark.smoke

#: chain seeds with distinct shapes (found by scanning the generator):
#: crashes + compacts / long prune-heavy run / natural corpus flip
CHAIN_SEEDS = (16, 81, 45)
#: differential chain seed with prune + compact
DIFF_SEED = 67
#: differential chain seed reaching depth 8 with two compactions
DEEP_SEED = 722

CHAIN_CHECKS = ("chain-structure", "chain-refcounts", "chain-restore")


def chain_scenario(**overrides):
    """A small hand-built chain scenario covering every chain step op."""
    base = dict(
        seed=1234,
        n_ranks=3,
        k=2,
        chunk_size=64,
        chunks_per_rank=5,
        strategy="coll-dedup",
        redundancy="replication",
        degraded=True,
        chain=True,
        steps=(
            Step("dump", kind="full"),
            Step("dump", kind="delta"),
            Step("crash", node=2),
            Step("repair"),
            Step("dump", kind="delta"),
            Step("prune"),
            Step("compact"),
            Step("dump", kind="delta"),
        ),
    )
    base.update(overrides)
    return Scenario(**base)


class TestGenerator:
    def test_generator_draws_chain_scenarios(self):
        chains = [
            s for s in map(generate_scenario, range(150)) if s.chain
        ]
        assert len(chains) >= 10

    def test_chain_draw_respects_its_gates(self):
        for s in map(generate_scenario, range(200)):
            if not s.chain:
                continue
            assert s.tenants == 1
            assert s.workload_mode == "fresh"
            assert s.redundancy == "replication"
            dumps = [st for st in s.steps if st.op == "dump"]
            assert dumps[0].kind == "full"
            # prune only ever fires with two live epochs (tip survives)
            live = 0
            for st in s.steps:
                if st.op == "dump":
                    live += 1
                elif st.op == "prune":
                    assert live >= 2
                    live -= 1

    def test_non_chain_scenarios_never_use_chain_ops(self):
        for s in map(generate_scenario, range(200)):
            if s.chain:
                continue
            assert all(
                st.op not in ("prune", "compact") for st in s.steps
            )
            assert all(
                st.kind == "full" for st in s.steps if st.op == "dump"
            )


class TestScenarioModel:
    def test_chain_scenario_round_trips_serialization(self):
        s = generate_scenario(DEEP_SEED)
        assert s.chain
        assert Scenario.from_dict(s.as_dict()) == s

    def test_delta_kind_requires_chain(self):
        with pytest.raises(ScenarioError):
            chain_scenario(chain=False)

    def test_prune_requires_chain(self):
        with pytest.raises(ScenarioError):
            chain_scenario(
                chain=False,
                steps=(Step("dump"), Step("prune")),
            )

    def test_chain_excludes_multi_tenancy(self):
        with pytest.raises(ScenarioError):
            chain_scenario(tenants=2)

    def test_chain_excludes_parity(self):
        with pytest.raises(ScenarioError):
            chain_scenario(redundancy="parity", degraded=False)


class TestExecutor:
    @pytest.mark.parametrize("seed", CHAIN_SEEDS)
    def test_chain_seeds_uphold_all_invariants(self, seed):
        s = generate_scenario(seed)
        assert s.chain
        result = execute_scenario(s, backend="thread")
        assert result.ok, [v.as_dict() for v in result.violations]
        for step_doc in result.steps:
            for name in CHAIN_CHECKS:
                assert name in step_doc["invariants_checked"]
            assert "restore" not in step_doc["invariants_checked"]

    def test_hand_built_chain_scenario_is_green_on_both_backends(self):
        s = chain_scenario()
        thread = execute_scenario(s, backend="thread")
        assert thread.ok, [v.as_dict() for v in thread.violations]
        process = execute_scenario(s, backend="process")
        assert process.ok, [v.as_dict() for v in process.violations]
        assert not differential_check(thread, process)

    def test_dump_steps_record_chain_metadata(self):
        result = execute_scenario(chain_scenario(), backend="thread")
        dumps = [d for d in result.steps if d["op"] == "dump"]
        assert dumps[0]["kind"] == "full"
        assert dumps[0]["epoch"] == 0
        deltas = [d for d in dumps if d["kind"] == "delta"]
        assert deltas
        for doc in deltas:
            assert 0 < doc["changed_chunks"] < doc["total_chunks"]
        prunes = [d for d in result.steps if d["op"] == "prune"]
        assert prunes and "epoch" in prunes[0]
        compacts = [d for d in result.steps if d["op"] == "compact"]
        assert compacts and compacts[0]["new_dump_id"] > compacts[0][
            "old_dump_id"
        ]

    def test_deep_differential_seed_reaches_depth_eight(self):
        """The corpus' long-chain seed really does time-travel through a
        depth >= 8 chain on both backends, post-GC and post-compaction:
        ``run_scenario`` honours its differential flag, and the armed
        chain-restore invariant restores every live epoch after every
        step."""
        s = generate_scenario(DEEP_SEED)
        assert s.chain and s.differential
        depth = deepest = 0
        for st in s.steps:
            if st.op == "dump":
                depth = 1 if st.kind == "full" else depth + 1
                deepest = max(deepest, depth)
            elif st.op == "compact":
                depth = min(depth, 1)
        assert deepest >= 8
        assert any(st.op == "compact" for st in s.steps)
        result = run_scenario(s)
        assert result.ok, [v.as_dict() for v in result.violations]

    def test_differential_chain_seed_with_gc_is_green(self):
        s = generate_scenario(DIFF_SEED)
        assert s.chain and s.differential
        assert any(st.op == "prune" for st in s.steps)
        assert any(st.op == "compact" for st in s.steps)
        result = run_scenario(s)
        assert result.ok, [v.as_dict() for v in result.violations]

    def test_chain_run_is_deterministic(self):
        s = generate_scenario(CHAIN_SEEDS[0])
        a = execute_scenario(s, backend="thread")
        b = execute_scenario(s, backend="thread")
        assert a.verdict() == b.verdict()

    def test_collect_trace_yields_chain_spans(self):
        result = execute_scenario(
            chain_scenario(), backend="thread", collect_trace=True
        )
        assert result.ok
        assert result.traces


class TestHarnessCatchesBugs:
    def test_drop_replica_bug_trips_chain_invariants(self):
        s = generate_scenario(16)  # k=3: replicas to drop
        result = execute_scenario(s, backend="thread", bug="drop-replica")
        tripped = {v.invariant for v in result.violations}
        assert "replication" in tripped
        assert "chain-restore" in tripped


class TestShrinker:
    def test_shrinker_simplifies_chain_machinery_away(self):
        """A chain failure that does not depend on the chain machinery
        (an injected replica drop) must shrink to a plain non-chain
        scenario — dropping prune/compact steps, promoting deltas and
        finally clearing the chain flag."""
        s = generate_scenario(16)

        def still_fails(candidate):
            return not execute_scenario(
                candidate, backend="thread", bug="drop-replica"
            ).ok

        result = shrink(s, still_fails, max_evaluations=120)
        assert result.accepted > 0
        final = result.scenario
        assert still_fails(final)
        assert not final.chain
        assert final.n_dumps <= s.n_dumps
        assert any(
            "delta" in entry or "chain" in entry for entry in result.trail
        )
