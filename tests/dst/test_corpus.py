"""The checked-in seed corpus: freshness, coverage and green replay.

This is the same set of scenarios the CI fuzz-smoke job replays; keeping
a fast copy in tier-1 means a PR that breaks an invariant fails the normal
test run too, not just the separate fuzz job.
"""

import pytest

from repro.dst import (
    CORPUS_SEEDS,
    default_corpus_dir,
    generate_scenario,
    iter_corpus,
    run_scenario,
)

pytestmark = pytest.mark.smoke


def test_corpus_files_match_generator():
    """The JSON files are the source of truth for CI; they must not drift
    from what the generator produces for their recorded seeds (regenerate
    with ``repro.dst.write_corpus`` after changing the generator)."""
    entries = list(iter_corpus(default_corpus_dir()))
    assert [s.seed for _p, s in entries] == sorted(CORPUS_SEEDS)
    for _path, scenario in entries:
        assert scenario == generate_scenario(scenario.seed)


def _max_chain_depth(scenario) -> int:
    """Deepest ancestor path any epoch of a chain scenario reaches (a
    full resets the chain, a compact rewrites the tip into a full)."""
    depth = 0
    deepest = 0
    for st in scenario.steps:
        if st.op == "dump":
            depth = 1 if st.kind == "full" else depth + 1
            deepest = max(deepest, depth)
        elif st.op == "compact":
            depth = min(depth, 1)
    return deepest


def test_corpus_covers_the_feature_matrix():
    feats = set()
    for _path, s in iter_corpus(default_corpus_dir()):
        if s.redundancy == "parity":
            feats.add("parity")
        if s.workload_mode == "repeat":
            feats.add("repeat")
        if s.differential:
            feats.add("differential")
        if not s.batched:
            feats.add("legacy")
        if s.compress:
            feats.add("compress")
        if any(st.op == "crash" for st in s.steps):
            feats.add("crash")
        if any(st.crash is not None for st in s.steps):
            feats.add("mid-dump")
        if any(st.op == "repair" for st in s.steps):
            feats.add("repair")
        if s.pipelined and s.integrity == "fast":
            feats.add("pipelined-fast")
        if s.tenants > 1:
            feats.add("multi-tenant")
        if s.tenants > 1 and any(st.op == "gc" for st in s.steps):
            feats.add("tenant-gc")
        if s.shard_count > 1:
            feats.add("sharded")
        if s.batched_restore:
            feats.add("batched-restore")
        else:
            feats.add("legacy-restore")
        if s.arrival == "bursty":
            feats.add("bursty")
        if any(st.op == "tick" for st in s.steps):
            feats.add("tick")
        if s.chain:
            feats.add("chain")
            if any(
                st.op == "dump" and st.kind == "delta" for st in s.steps
            ):
                feats.add("chain-delta")
            if any(st.op == "prune" for st in s.steps):
                feats.add("chain-prune")
            if any(st.op == "compact" for st in s.steps):
                feats.add("chain-compact")
            if any(
                st.op == "crash" or (
                    st.op == "dump" and st.crash is not None
                )
                for st in s.steps
            ):
                feats.add("chain-crash")
            if s.differential:
                feats.add("chain-differential")
            if _max_chain_depth(s) >= 8:
                feats.add("chain-deep")
    assert feats >= {
        "parity", "repeat", "differential", "legacy", "compress",
        "crash", "mid-dump", "repair", "pipelined-fast",
        "multi-tenant", "tenant-gc", "sharded",
        "batched-restore", "legacy-restore", "bursty", "tick",
        "chain", "chain-delta", "chain-prune", "chain-compact",
        "chain-crash", "chain-differential", "chain-deep",
    }


@pytest.mark.parametrize("seed", sorted(CORPUS_SEEDS))
def test_corpus_scenario_upholds_all_invariants(seed):
    result = run_scenario(generate_scenario(seed))
    assert result.ok, [v.as_dict() for v in result.violations]


def test_corpus_keeps_an_alert_firing_bursty_seed():
    """At least one corpus scenario must drive the queue-wait SLO into a
    fire event, so the burn-rate engine's alert path (and the
    slo-determinism replay over it) stays exercised by every CI run —
    a corpus of quiet scenarios would let the alerting logic rot."""
    fired = []
    for _path, s in iter_corpus(default_corpus_dir()):
        if s.arrival != "bursty":
            continue
        result = run_scenario(s)
        assert result.ok, [v.as_dict() for v in result.violations]
        assert result.slo is not None
        if result.slo["alert_count"]:
            fired.append(s.seed)
            assert any(
                a["event"] == "fire" for a in result.slo["alerts"]
            )
    assert fired, "no bursty corpus seed fires its SLO"
