"""The invariant oracles must actually fire when state is corrupted.

Each test breaks one property by hand and asserts the matching checker
reports it — the fuzzer is only as strong as its oracles, so every oracle
gets a positive (fires on corruption) and negative (silent when healthy)
case.
"""

from repro.core import DumpConfig, Strategy, dump_output
from repro.core.runner import run_collective
from repro.dst import invariants as inv
from repro.storage.local_store import Cluster

from tests.conftest import make_rank_dataset

N, K = 4, 3


def dumped_cluster():
    cfg = DumpConfig(replication_factor=K, chunk_size=64,
                     strategy=Strategy.COLL_DEDUP, f_threshold=4096)
    cluster = Cluster(N)
    results, _world = run_collective(
        N,
        lambda comm: dump_output(
            comm, make_rank_dataset(comm.rank), cfg, cluster
        ),
        cluster=cluster,
    )
    return cluster, results


def full_floors():
    return {(0, rank): K for rank in range(N)}


class TestReplication:
    def test_healthy_cluster_is_silent(self):
        cluster, _reports = dumped_cluster()
        assert inv.check_replication(cluster, 0, full_floors()) == []

    def test_dropped_replica_detected(self):
        cluster, _reports = dumped_cluster()
        fp = next(iter(sorted(
            cluster.nodes[0].get_manifest(0, 0).fingerprints
        )))
        holders = cluster.locate(fp)
        victim = cluster.nodes[holders[-1]].chunks
        victim._refcounts.pop(fp)
        payload = victim._chunks.pop(fp)
        victim.physical_bytes -= len(payload)
        out = inv.check_replication(cluster, 0, full_floors())
        assert out and out[0].invariant == "replication"
        assert fp.hex()[:12] in out[0].detail

    def test_vanished_manifest_detected(self):
        cluster, _reports = dumped_cluster()
        for node in cluster.nodes:
            node._manifests.pop((2, 0), None)
        out = inv.check_replication(cluster, 0, full_floors())
        assert any("vanished" in v.detail for v in out)

    def test_zero_floor_tolerates_anything(self):
        cluster, _reports = dumped_cluster()
        cluster.nodes[0].chunks._chunks.clear()
        cluster.nodes[0].chunks._refcounts.clear()
        floors = {key: 0 for key in full_floors()}
        assert inv.check_replication(cluster, 0, floors) == []


class TestRestore:
    def test_byte_equality_against_oracle(self):
        cluster, _reports = dumped_cluster()

        def oracle(dump_id, rank):
            return make_rank_dataset(rank).to_bytes()

        assert inv.check_restore(cluster, 0, full_floors(), oracle) == []

    def test_corrupted_payload_detected(self):
        cluster, _reports = dumped_cluster()
        store = cluster.nodes[0].chunks
        for fp in list(store._chunks):
            store._chunks[fp] = b"\x00" * len(store._chunks[fp])

        def oracle(dump_id, rank):
            return make_rank_dataset(rank).to_bytes()

        out = inv.check_restore(cluster, 0, {(0, 0): K}, oracle)
        assert out and out[0].invariant == "restore"


class TestReferentialIntegrity:
    def test_healthy_cluster_has_no_orphans(self):
        cluster, _reports = dumped_cluster()
        assert inv.check_referential_integrity(cluster, 0) == []

    def test_orphan_chunk_detected(self):
        cluster, _reports = dumped_cluster()
        cluster.nodes[1].chunks.put(b"\xee" * 20, b"nobody references me")
        out = inv.check_referential_integrity(cluster, 0)
        assert len(out) == 1
        assert "orphan" in out[0].detail


class TestAuditConsistency:
    def test_agrees_when_healthy(self):
        cluster, _reports = dumped_cluster()
        assert inv.check_audit_consistency(
            cluster, 0, [0], full_floors()
        ) == []

    def test_positive_floor_but_unrecoverable_detected(self):
        cluster, _reports = dumped_cluster()
        for node in cluster.nodes:
            node._manifests.pop((3, 0), None)
        out = inv.check_audit_consistency(cluster, 0, [0], full_floors())
        assert any(v.invariant == "audit-consistency" for v in out)


class TestWindowLayout:
    def test_real_reports_pass(self):
        _cluster, reports = dumped_cluster()
        assert inv.check_window_layout(0, reports, K, [True] * N) == []

    def test_wire_count_mismatch_detected(self):
        _cluster, reports = dumped_cluster()
        reports[0].sent_per_partner = list(reports[0].sent_per_partner)
        reports[0].sent_per_partner[0] += 1
        out = inv.check_window_layout(0, reports, K, [True] * N)
        assert any("per partner" in v.detail for v in out)

    def test_duplicate_shuffle_position_detected(self):
        _cluster, reports = dumped_cluster()
        reports[1].shuffle_position = reports[0].shuffle_position
        out = inv.check_window_layout(0, reports, K, [True] * N)
        assert out and out[0].invariant == "window-layout"


class TestReportSanity:
    def test_real_reports_pass(self):
        _cluster, reports = dumped_cluster()
        assert inv.check_report_sanity(0, reports) == []

    def test_sent_count_mismatch_detected(self):
        _cluster, reports = dumped_cluster()
        reports[2].sent_chunks += 1
        out = inv.check_report_sanity(0, reports)
        assert any(v.invariant == "report-sanity" for v in out)

    def test_dead_rank_exempt_from_coverage_bound(self):
        _cluster, reports = dumped_cluster()
        reports[1].stored_chunks = 0
        reports[1].discarded_chunks = 0
        reports[1].sent_chunks = 0
        reports[1].sent_per_partner = [0] * (K - 1)
        alive = [True, False, True, True]
        assert inv.check_report_sanity(0, reports, alive=alive) == []
        assert inv.check_report_sanity(0, reports) != []


class TestSLODeterminism:
    class FakeService:
        def __init__(self, engine, timeline, tick):
            self.slo = engine
            self.timeline = timeline
            self.tick = tick

    def driven(self, waits):
        from repro.obs.slo import SLOEngine
        from repro.obs.timeline import TimelineStore

        engine = SLOEngine(
            objectives=("dump.queue_wait_ticks.p95 < 2",),
            windows=((4, 1.0), (2, 1.0)),
            min_samples=2,
        )
        timeline = TimelineStore()
        for tick, wait in enumerate(waits, start=1):
            timeline.record("dump", tick, queue_wait_ticks=float(wait))
            engine.advance(timeline, tick)
        return self.FakeService(engine, timeline, len(waits))

    def test_pure_fold_is_silent(self):
        service = self.driven([0, 5, 5, 5, 5, 0, 0, 0])
        assert service.slo.alerts  # the scenario alerted
        assert inv.check_slo_determinism(service, step=7) == []

    def test_tampered_alert_log_detected(self):
        service = self.driven([0, 5, 5, 5, 5, 0, 0, 0])
        service.slo.alerts.pop()
        (violation,) = inv.check_slo_determinism(service, step=7)
        assert violation.invariant == "slo-determinism"
        assert "diverges" in violation.detail

    def test_disarms_without_an_engine(self):
        service = self.driven([5, 5, 5, 5])
        service.slo = None
        assert inv.check_slo_determinism(service, step=3) == []

    def test_disarms_once_the_ring_dropped_samples(self):
        service = self.driven([5, 5, 5, 5])
        service.slo.alerts.pop()  # would be a violation...
        service.timeline.dropped = 1  # ...but replay is no longer sound
        assert inv.check_slo_determinism(service, step=3) == []
