"""Repair planner: deterministic, load-balanced transfer schedules."""

from repro.repair import plan_repair, scan_cluster

from tests.repair.conftest import dumped_cluster


def failed_scan(n=6, k=3, fail=(2,), **cfg):
    cluster = dumped_cluster(n, k=k, **cfg)
    for node in fail:
        cluster.fail_node(node)
    return cluster, scan_cluster(cluster, k)


class TestScheduleShape:
    def test_clean_scan_gives_empty_schedule(self):
        cluster = dumped_cluster(5, k=3)
        schedule = plan_repair(cluster, scan_cluster(cluster, 3))
        assert schedule.empty
        assert schedule.bytes_scheduled == 0

    def test_every_deficit_copy_scheduled(self):
        cluster, scan = failed_scan()
        schedule = plan_repair(cluster, scan)
        assert schedule.chunks_scheduled == scan.deficit_chunks
        assert schedule.bytes_scheduled == scan.deficit_bytes

    def test_slot_payload_is_largest_chunk(self):
        cluster, scan = failed_scan()
        schedule = plan_repair(cluster, scan)
        assert schedule.slot_payload == max(t.size for t in schedule.transfers)
        assert schedule.digest_size == len(schedule.transfers[0].fp)

    def test_plan_is_deterministic(self):
        cluster, scan = failed_scan()
        first = plan_repair(cluster, scan)
        second = plan_repair(cluster, scan)
        assert first.transfers == second.transfers
        assert first.manifest_transfers == second.manifest_transfers


class TestPlacement:
    def test_destinations_avoid_existing_replicas(self):
        cluster, scan = failed_scan()
        schedule = plan_repair(cluster, scan)
        for t in schedule.transfers:
            assert t.dest not in scan.chunks[t.fp].holders

    def test_no_two_copies_share_a_destination(self):
        cluster, scan = failed_scan()
        by_fp = {}
        for t in plan_repair(cluster, scan).transfers:
            by_fp.setdefault(t.fp, []).append(t.dest)
        for dests in by_fp.values():
            assert len(dests) == len(set(dests))

    def test_only_live_nodes_participate(self):
        cluster, scan = failed_scan(fail=(1, 4))
        live = {n.node_id for n in cluster.alive_nodes}
        schedule = plan_repair(cluster, scan)
        for t in schedule.transfers:
            assert t.source in live and t.dest in live
        for mt in schedule.manifest_transfers:
            assert mt.source in live and mt.dest in live

    def test_sources_hold_what_they_serve(self):
        cluster, scan = failed_scan()
        for t in plan_repair(cluster, scan).transfers:
            if not t.reconstruct:
                assert t.source in scan.chunks[t.fp].holders

    def test_read_load_spread_over_holders(self):
        # With every chunk at K-1 holders after one failure, a naive
        # "first holder serves" plan would put the whole read load on the
        # lowest node id; the planner must use more than one source.
        cluster, scan = failed_scan()
        sources = {t.source for t in plan_repair(cluster, scan).transfers}
        assert len(sources) > 1


class TestWindowOffsets:
    def test_incoming_preserves_schedule_order(self):
        cluster, scan = failed_scan()
        schedule = plan_repair(cluster, scan)
        for dest, region in schedule.incoming().items():
            indices = [schedule.transfers.index(t) for t in region]
            assert indices == sorted(indices)
            assert all(t.dest == dest for t in region)

    def test_slots_are_dense_per_destination(self):
        cluster, scan = failed_scan()
        schedule = plan_repair(cluster, scan)
        slots = schedule.slot_of()
        for region in schedule.incoming().values():
            assert sorted(slots[t] for t in region) == list(range(len(region)))
