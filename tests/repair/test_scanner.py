"""Repair scanner: the under-replication table."""

import pytest

from repro.core import Strategy
from repro.repair import scan_cluster
from repro.storage import FailureInjector

from tests.repair.conftest import dumped_cluster


class TestHealthyCluster:
    def test_scan_is_clean(self):
        cluster = dumped_cluster(6, k=3)
        scan = scan_cluster(cluster, 3)
        assert scan.clean
        assert scan.deficit_chunks == 0
        assert scan.deficit_bytes == 0
        assert scan.scanned_chunks > 0
        assert scan.scanned_bytes > 0

    def test_healthy_parity_cluster_is_clean(self):
        # Intact stripes protect as well as K replicas do; the scanner must
        # not schedule blanket re-replication of parity-covered chunks.
        cluster = dumped_cluster(6, k=3, redundancy="parity", stripe_data=4)
        assert scan_cluster(cluster, 3).clean

    def test_raising_target_creates_deficits(self):
        cluster = dumped_cluster(6, k=2)
        scan = scan_cluster(cluster, 3)
        assert not scan.clean
        assert all(d.deficit == 1 for d in scan.chunks.values())

    def test_target_capped_at_live_nodes(self):
        cluster = dumped_cluster(4, k=4)
        scan = scan_cluster(cluster, 10)
        assert scan.target_k == 10
        assert scan.clean  # every chunk already on all 4 nodes

    def test_invalid_target_rejected(self):
        cluster = dumped_cluster(2, k=2)
        with pytest.raises(ValueError):
            scan_cluster(cluster, 0)


class TestAfterFailures:
    def test_deficit_matches_missing_replicas(self):
        cluster = dumped_cluster(6, k=3)
        cluster.fail_node(2)
        scan = scan_cluster(cluster, 3)
        assert not scan.clean
        for deficit in scan.chunks.values():
            assert len(deficit.holders) < deficit.target
            assert deficit.deficit == deficit.target - len(deficit.holders)
            assert 2 not in deficit.holders
            assert deficit.deficit_bytes == deficit.deficit * deficit.size
        assert scan.deficit_chunks == sum(
            d.deficit for d in scan.chunks.values()
        )

    def test_chunk_with_no_surviving_holder_is_lost(self):
        cluster = dumped_cluster(6, k=2)
        # Kill both holders of a globally shared chunk: every surviving
        # manifest still references it, but no replica is left anywhere.
        holders = cluster.manifest_holders(0, 0)
        manifest = cluster.nodes[holders[0]].get_manifest(0, 0)
        fp = next(f for f in manifest.fingerprints
                  if len(cluster.locate(f)) == 2)
        for node_id in cluster.locate(fp):
            cluster.fail_node(node_id)
        scan = scan_cluster(cluster, 2)
        assert any(lost_fp == fp for lost_fp, _d in scan.lost_chunks)
        assert fp not in scan.chunks

    def test_manifest_deficits_tracked(self):
        cluster = dumped_cluster(6, k=3)
        cluster.fail_node(0)
        scan = scan_cluster(cluster, 3)
        assert scan.manifests
        for deficit in scan.manifests:
            assert deficit.deficit >= 1
            assert 0 not in deficit.holders
            assert deficit.nbytes > 0

    def test_fully_lost_manifest_recorded(self):
        n, k = 4, 1
        cluster = dumped_cluster(n, k=k, strategy=Strategy.NO_DEDUP)
        injector = FailureInjector(cluster)
        injector.fail_nodes([3])
        scan = scan_cluster(cluster, k)
        assert (3, 0) in scan.lost_ranks


class TestParityCoverage:
    def test_holderless_chunks_marked_parity_only(self):
        cluster = dumped_cluster(6, k=3, redundancy="parity", stripe_data=4)
        injector = FailureInjector(cluster, seed=7)
        injector.fail_random_nodes(2)
        scan = scan_cluster(cluster, 3)
        holderless = [d for d in scan.chunks.values() if not d.holders]
        assert holderless  # rank-unique parity-protected chunks died with nodes
        for deficit in holderless:
            assert deficit.parity_only
            assert deficit.size > 0
        # K-1 node failures never lose parity-protected data outright.
        assert not scan.lost_chunks

    def test_broken_stripes_fall_back_to_replication(self):
        # Once a stripe has lost shards its margin is below K-1, so the
        # chunks it covers must be re-replicated even if they still have a
        # live holder.
        cluster = dumped_cluster(6, k=3, redundancy="parity", stripe_data=4)
        cluster.fail_node(5)
        scan = scan_cluster(cluster, 3)
        held = [d for d in scan.chunks.values() if d.holders]
        assert held
        assert all(not d.parity_only for d in held)


class TestMultipleDumps:
    def test_all_visible_dumps_scanned_by_default(self):
        cluster = dumped_cluster(5, k=2, dump_ids=(0, 1))
        scan = scan_cluster(cluster, 2)
        assert scan.dump_ids == [0, 1]
        assert scan.clean

    def test_dump_filter_respected(self):
        cluster = dumped_cluster(5, k=2, dump_ids=(0, 1))
        cluster.fail_node(1)
        scan = scan_cluster(cluster, 2, dump_ids=[1])
        assert scan.dump_ids == [1]
        assert all(d.dump_id == 1 for d in scan.manifests)
