"""End-to-end repair property: scan -> plan -> execute -> audit.

For every redundancy configuration the engine supports, failing K-1 nodes
and repairing must put the cluster back at full failure tolerance: every
chunk at >= min(K, live) replicas, every further K-1 failure combination
survivable, and a second repair finding nothing to do.
"""

import copy
import itertools

import pytest

from repro.core import Strategy
from repro.repair import REPAIR_PHASES, repair_cluster, scan_cluster
from repro.storage import FailureInjector

from tests.repair.conftest import dumped_cluster

CONFIGS = [
    pytest.param(Strategy.NO_DEDUP, {}, id="no-dedup"),
    pytest.param(Strategy.COLL_DEDUP, {}, id="coll-dedup"),
    pytest.param(
        Strategy.COLL_DEDUP,
        {"redundancy": "parity", "stripe_data": 4},
        id="coll-dedup-parity",
    ),
]


def fail_and_repair(strategy, extra, n=6, k=3, seed=7):
    cluster = dumped_cluster(n, k=k, strategy=strategy, **extra)
    stored = {i: cluster.nodes[i].chunks.physical_bytes for i in range(n)}
    injector = FailureInjector(cluster, seed=seed)
    victims = injector.fail_random_nodes(k - 1)
    lost_bytes = sum(stored[v] for v in victims)
    report = repair_cluster(cluster, k)
    return cluster, injector, report, lost_bytes


@pytest.mark.parametrize("strategy,extra", CONFIGS)
class TestRepairProperty:
    def test_restores_full_tolerance(self, strategy, extra):
        cluster, injector, report, _lost = fail_and_repair(strategy, extra)
        k = report.target_k
        assert report.complete
        assert report.chunks_moved > 0
        assert injector.audit(0).all_recoverable
        # Every chunk is back at >= min(K, live) replicas: a fresh scan
        # finds nothing under-replicated and nothing lost.
        assert scan_cluster(cluster, k).clean
        # ... which means any further K-1 failures are survivable.
        live = [node.node_id for node in cluster.alive_nodes]
        for combo in itertools.combinations(live, k - 1):
            trial = copy.deepcopy(cluster)
            for node_id in combo:
                trial.fail_node(node_id)
            assert FailureInjector(trial).audit(0).all_recoverable, (
                f"rank data lost after further failures {combo}"
            )

    def test_second_repair_moves_nothing(self, strategy, extra):
        cluster, _inj, _report, _lost = fail_and_repair(strategy, extra)
        second = repair_cluster(cluster, _report.target_k)
        assert second.chunks_moved == 0
        assert second.bytes_moved == 0
        assert second.manifests_moved == 0
        assert second.clean

    def test_report_accounting_consistent(self, strategy, extra):
        _cluster, _inj, report, _lost = fail_and_repair(strategy, extra)
        assert sum(report.recv_chunks.values()) == report.chunks_moved
        assert sum(report.recv_bytes.values()) == (
            report.bytes_moved + report.manifest_bytes_moved
        )
        assert sum(report.sent_chunks.values()) == report.chunks_moved
        assert report.deficit_chunks == report.chunks_moved
        assert report.phases
        assert set(report.phases) <= set(REPAIR_PHASES)


class TestReplicationBounds:
    @pytest.mark.parametrize(
        "strategy", [Strategy.NO_DEDUP, Strategy.COLL_DEDUP]
    )
    def test_moves_at_most_what_was_lost(self, strategy):
        # No blanket re-replication: with full K-replication, re-making the
        # replicas that died can never exceed the bytes the victims held.
        # (Parity mode is exempt by design — repair re-materialises
        # stripe-protected chunks to replication, trading the storage
        # saving back for repair simplicity.)
        _cluster, _inj, report, lost_bytes = fail_and_repair(strategy, {})
        assert 0 < report.bytes_moved <= lost_bytes

    def test_manifests_back_at_target(self):
        cluster, _inj, report, _lost = fail_and_repair(Strategy.COLL_DEDUP, {})
        assert report.manifests_moved > 0
        target = min(report.target_k, len(cluster.alive_nodes))
        for rank in range(cluster.n_ranks):
            assert len(cluster.manifest_holders(rank, 0)) >= target

    def test_parity_reconstructs_holderless_chunks(self):
        _cluster, _inj, report, _lost = fail_and_repair(
            Strategy.COLL_DEDUP, {"redundancy": "parity", "stripe_data": 4}
        )
        assert report.reconstructed_chunks > 0


class TestCleanCluster:
    def test_repair_without_failures_is_a_noop(self):
        cluster = dumped_cluster(5, k=3)
        report = repair_cluster(cluster, 3)
        assert report.clean
        assert report.chunks_moved == 0
        assert report.scanned_chunks > 0

    def test_unrepairable_loss_is_reported_not_raised(self):
        # k=1: a dead node takes its rank's only manifest copy with it.
        cluster = dumped_cluster(4, k=1, strategy=Strategy.NO_DEDUP)
        cluster.fail_node(2)
        report = repair_cluster(cluster, 1)
        assert not report.complete
        assert report.lost_ranks > 0

    def test_chunk_lost_beyond_repair_is_counted(self):
        cluster = dumped_cluster(6, k=2)
        holders = cluster.manifest_holders(0, 0)
        manifest = cluster.nodes[holders[0]].get_manifest(0, 0)
        fp = next(f for f in manifest.fingerprints
                  if len(cluster.locate(f)) == 2)
        for node_id in cluster.locate(fp):
            cluster.fail_node(node_id)
        report = repair_cluster(cluster, 2)
        assert not report.complete
        assert report.lost_chunks > 0
        # Everything else is still brought back to target.
        assert report.chunks_moved > 0
