"""Shared helpers for the repair-engine tests."""

from __future__ import annotations

from repro.core import DumpConfig, Strategy, dump_output
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset


def dumped_cluster(n, k=3, strategy=Strategy.COLL_DEDUP, dump_ids=(0,), **cfg):
    """A cluster with one (or more) completed collective dumps on it."""
    config = DumpConfig(replication_factor=k, chunk_size=64, strategy=strategy,
                        f_threshold=4096, **cfg)
    cluster = Cluster(n)
    for dump_id in dump_ids:
        World(n).run(
            lambda comm: dump_output(
                comm, make_rank_dataset(comm.rank), config, cluster,
                dump_id=dump_id,
            )
        )
    return cluster
