"""The ALLREDUCE(HMERGE) reduction: threaded vs replayed merge tree."""

import pytest

from repro.core.global_dedup import (
    build_global_view,
    reduction_merge_tree,
    simulate_global_view,
)
from repro.core.hmerge import MergeTable
from repro.simmpi import run_spmd


def fp(i):
    return bytes([i % 251]) * 20


def make_inputs(n, spread=4):
    """Rank r holds fingerprints {r, r+1, ..., r+spread-1}: overlapping
    windows give a rich frequency distribution."""
    return [[fp(r + j) for j in range(spread)] for r in range(n)]


class TestEquivalence:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 12, 16])
    @pytest.mark.parametrize("k,f", [(1, 100), (3, 100), (3, 5), (2, 3)])
    def test_threaded_matches_simulated(self, n, k, f):
        inputs = make_inputs(n)
        sim_view, sim_table, _levels = simulate_global_view(inputs, k, f)

        def prog(comm):
            view, table = build_global_view(comm, inputs[comm.rank], k, f)
            return view.entries, table.rank_load

        results = run_spmd(n, prog)
        for entries, rank_load in results:
            assert entries == sim_view.entries
            assert rank_load == sim_table.rank_load

    def test_all_ranks_identical_view(self):
        inputs = make_inputs(11, spread=6)

        def prog(comm):
            view, _ = build_global_view(comm, inputs[comm.rank], 3, 8)
            return view.entries

        results = run_spmd(11, prog)
        assert all(r == results[0] for r in results)


class TestViewSemantics:
    def test_frequencies_exact_without_cap(self):
        n = 9
        inputs = make_inputs(n, spread=3)
        view, _t, _l = simulate_global_view(inputs, k=3, f=10_000)
        # fingerprint fp(i) appears on ranks max(0,i-2)..min(i,n-1)
        for i in range(n + 2):
            holders = [r for r in range(n) if i - 2 <= r <= i]
            entry = view.get(fp(i))
            assert entry is not None
            assert entry.freq == len(holders)
            assert set(entry.ranks).issubset(set(holders))
            assert len(entry.ranks) == min(3, len(holders))

    def test_designated_ranks_hold_the_fingerprint(self):
        inputs = make_inputs(8, spread=5)
        view, _t, _l = simulate_global_view(inputs, k=3, f=10_000)
        for f_, entry in view.entries.items():
            for rank in entry.ranks:
                assert f_ in inputs[rank]

    def test_cap_limits_view_size(self):
        view, table, _ = simulate_global_view(make_inputs(10, spread=8), k=2, f=6)
        assert len(view) <= 6
        table.check_invariants()

    def test_load_balance_spreads_designations(self):
        """All ranks hold the same 12 fingerprints, K=2: with 8 ranks and 24
        designation slots, no rank should hoard them (max load close to the
        ideal 3)."""
        n, n_fps = 8, 12
        inputs = [[fp(i) for i in range(n_fps)] for _ in range(n)]
        _view, table, _ = simulate_global_view(inputs, k=2, f=1000)
        loads = table.rank_load
        assert sum(loads.values()) == n_fps * 2
        assert max(loads.values()) <= 2 * (n_fps * 2 // n)


class TestReductionMergeTree:
    def test_single_table(self):
        t = MergeTable.from_local([fp(1)], 0, 2, 10)
        merged, levels = reduction_merge_tree([t])
        assert merged is t
        assert levels == []

    def test_level_sizes_reported(self):
        tables = [
            MergeTable.from_local([fp(r + j) for j in range(3)], r, 3, 100)
            for r in range(6)
        ]
        _merged, levels = reduction_merge_tree(tables)
        # 6 ranks: fold round + 2 doubling rounds + return round
        assert len(levels) == 4
        assert all(size > 0 for size in levels)

    def test_power_of_two_no_fold_rounds(self):
        tables = [MergeTable.from_local([fp(r)], r, 2, 100) for r in range(8)]
        _merged, levels = reduction_merge_tree(tables)
        assert len(levels) == 3  # log2(8)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            reduction_merge_tree([])
