"""HMERGE algebraic properties under truncation (hypothesis).

The reduction's correctness argument needs HMERGE to behave like a
commutative aggregation whose *observable content* does not depend on the
reduction tree:

* symmetry, ``hmerge(a, b) == hmerge(b, a)``, holds unconditionally —
  recursive doubling applies the operator with swapped arguments on the
  two sides of every exchange;
* with neither bound active (F >= distinct fingerprints, K >= ranks) the
  operator is fully associative: any reduction order yields the exact
  union table — frequency = owner count, designated = all owners;
* with K truncating (K < owners), the surviving *set* of fingerprints,
  every frequency, and the designated-list *size* ``min(owners, K)`` are
  still order-insensitive, and designated ranks are always genuine owners
  (which rank survives eviction is load-dependent and MAY differ between
  trees — the planner only relies on the properties asserted here);
* with F truncating, every intermediate and final table is bounded by F.
"""

import functools

from hypothesis import given, strategies as st

from repro.core.hmerge import MergeTable, hmerge


def fp(i):
    return bytes([i]) * 20


@st.composite
def ownerships(draw, max_ranks=6, max_fps=8):
    """A world: per-fingerprint nonempty owner sets over n ranks."""
    n = draw(st.integers(2, max_ranks))
    m = draw(st.integers(1, max_fps))
    owners = {
        fp(i): tuple(sorted(draw(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=n)
        )))
        for i in range(m)
    }
    return n, owners


def leaf_tables(n, owners, k, f):
    return [
        MergeTable.from_local(
            [fp_ for fp_, ranks in owners.items() if rank in ranks],
            rank, k, f,
        )
        for rank in range(n)
    ]


def fold(tables, order):
    out = functools.reduce(
        hmerge, (tables[i] for i in order[1:]), tables[order[0]]
    )
    out.check_invariants()
    return out


def tree_fold(tables):
    """Pairwise (recursive-doubling shaped) reduction."""
    level = list(tables)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            merged = hmerge(level[i], level[i + 1])
            merged.check_invariants()
            nxt.append(merged)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def entries_of(table):
    return {f: (e.freq, e.ranks) for f, e in table.entries.items()}


@given(ownerships(), st.integers(1, 4), st.integers(1, 12))
def test_hmerge_is_commutative_under_any_truncation(world, k, f):
    n, owners = world
    tables = leaf_tables(n, owners, k, f)
    for i in range(len(tables) - 1):
        ab = hmerge(tables[i], tables[i + 1])
        ba = hmerge(tables[i + 1], tables[i])
        assert entries_of(ab) == entries_of(ba)


@given(ownerships(), st.data())
def test_untruncated_reduction_is_order_insensitive(world, data):
    n, owners = world
    k, f = n, len(owners) + 4  # neither bound can bite
    tables = leaf_tables(n, owners, k, f)
    order = data.draw(st.permutations(range(n)))
    linear = fold(tables, list(order))
    tree = tree_fold(tables)
    expected = {f_: (len(ranks), ranks) for f_, ranks in owners.items()}
    assert entries_of(linear) == expected
    assert entries_of(tree) == expected


@given(ownerships(), st.integers(1, 3), st.data())
def test_k_truncated_reduction_preserves_content_and_list_size(
    world, k, data
):
    n, owners = world
    f = len(owners) + 4
    tables = leaf_tables(n, owners, k, f)
    order = data.draw(st.permutations(range(n)))
    merged = fold(tables, list(order))
    tree = tree_fold(tables)
    for result in (merged, tree):
        got = result.entries
        assert set(got) == set(owners)
        for fp_, entry in got.items():
            assert entry.freq == len(owners[fp_])
            assert len(entry.ranks) == min(len(owners[fp_]), k)
            assert set(entry.ranks) <= set(owners[fp_])


@given(ownerships(), st.integers(1, 3), st.integers(1, 4), st.data())
def test_f_truncated_tables_stay_bounded(world, k, f, data):
    n, owners = world
    tables = leaf_tables(n, owners, k, f)
    order = data.draw(st.permutations(range(n)))
    acc = tables[order[0]]
    for i in order[1:]:
        acc = hmerge(acc, tables[i])
        acc.check_invariants()
        assert len(acc) <= f
    # Survivors never over-count and only designate genuine owners.  An
    # exact frequency is NOT guaranteed: a fingerprint evicted by the top-F
    # cut restarts its count if it re-enters from a later leaf — the
    # paper's "considered unique even if they are not" relaxation.
    for fp_, entry in acc.entries.items():
        assert 1 <= entry.freq <= len(owners[fp_])
        assert set(entry.ranks) <= set(owners[fp_])


# -- GlobalView.wire_nbytes caching ------------------------------------------
#
# The view caches its packed wire size at construction so reduction-cost
# accounting never re-walks the entry dict.  The cache is only sound if it
# always equals a *fresh* encode of the view it is attached to — in
# particular after hmerge truncation has evicted designated ranks (K bound)
# or whole fingerprints (F bound), and when several views are materialised
# from different tables in sequence.


def fresh_payload_nbytes(view):
    from repro.core.wire import encode_global_view

    if not len(view):
        return 0
    return encode_global_view(view)[1]


@given(ownerships(), st.integers(1, 3), st.integers(1, 6), st.data())
def test_wire_nbytes_matches_fresh_encode_after_merge_and_eviction(
    world, k, f, data
):
    from repro.core.hmerge import GlobalView

    n, owners = world
    tables = leaf_tables(n, owners, k, f)
    order = data.draw(st.permutations(range(n)))
    acc = tables[order[0]]
    views = [GlobalView.from_table(acc)]
    for i in order[1:]:
        acc = hmerge(acc, tables[i])
        views.append(GlobalView.from_table(acc))
    # Every intermediate view (including post-eviction ones) reports the
    # size its own encode would produce — never a stale predecessor's.
    for view in views:
        assert view.wire_nbytes == fresh_payload_nbytes(view)
        assert view.nbytes_estimate() == view.wire_nbytes


@given(ownerships(), st.integers(1, 3))
def test_from_table_never_serves_stale_size(world, k):
    from repro.core.hmerge import GlobalView

    n, owners = world
    # A big table first, then a heavily F-truncated one: if from_table
    # cached across calls, the second view would inherit the first's size.
    big = tree_fold(leaf_tables(n, owners, n, len(owners) + 4))
    small = tree_fold(leaf_tables(n, owners, k, 1))
    view_big = GlobalView.from_table(big)
    view_small = GlobalView.from_table(small)
    assert view_big.wire_nbytes == fresh_payload_nbytes(view_big)
    assert view_small.wire_nbytes == fresh_payload_nbytes(view_small)
    if len(owners) > 1:
        assert view_small.wire_nbytes < view_big.wire_nbytes
