"""The cross-dump incremental fingerprint cache: reuse, invalidation, stats."""

import numpy as np
import pytest

from repro.core.chunking import Dataset
from repro.core.fingerprint import Fingerprinter
from repro.core.fpcache import FingerprintCache

CS = 64


def seg(seed, n_chunks, tail=0):
    return bytearray(
        np.random.RandomState(seed).bytes(n_chunks * CS + tail)
    )


class TestColdPath:
    def test_cold_dump_hashes_everything(self):
        ds = Dataset([seg(0, 4), seg(1, 2, tail=10)])
        cache = FingerprintCache(CS)
        fpr = Fingerprinter()
        fps = cache.fingerprint_dataset(ds, fpr, dirty_regions=None)
        assert fps == Fingerprinter().fingerprint_all(ds.chunks(CS))
        stats = cache.take_stats()
        assert stats.hits == 0
        assert stats.misses == 7
        assert stats.bytes_hashed == ds.nbytes
        assert fpr.hashed_bytes == ds.nbytes

    def test_unknown_dirtiness_always_rehashes(self):
        ds = Dataset([seg(0, 4)])
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        stats = cache.take_stats()
        assert stats.hits == 0 and stats.misses == 4


class TestWarmPath:
    def test_clean_segment_skips_hashing(self):
        ds = Dataset([seg(0, 4)])
        cache = FingerprintCache(CS)
        cold = cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        fpr = Fingerprinter()
        warm = cache.fingerprint_dataset(ds, fpr, [[]])
        assert warm == cold
        stats = cache.take_stats()
        assert stats.hits == 4
        assert stats.bytes_skipped == ds.nbytes
        assert fpr.hashed_bytes == 0

    def test_dirty_range_rehashes_only_overlapping_chunks(self):
        buf = seg(0, 8)
        ds = Dataset([buf])
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        # Mutate bytes inside chunks 2 and 3, declare exactly that range.
        buf[2 * CS + 5] ^= 0xFF
        buf[3 * CS + 1] ^= 0xFF
        fpr = Fingerprinter()
        warm = cache.fingerprint_dataset(ds, fpr, [[(2 * CS + 5, 3 * CS + 2)]])
        assert warm == Fingerprinter().fingerprint_all(ds.chunks(CS))
        stats = cache.take_stats()
        assert stats.misses == 2
        assert stats.hits == 6
        assert fpr.hashed_bytes == 2 * CS

    def test_byte_range_straddling_chunk_boundary(self):
        buf = seg(0, 4)
        ds = Dataset([buf])
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        buf[CS - 1] ^= 1
        buf[CS] ^= 1
        warm = cache.fingerprint_dataset(ds, Fingerprinter(), [[(CS - 1, CS + 1)]])
        assert warm == Fingerprinter().fingerprint_all(ds.chunks(CS))

    def test_short_tail_chunk_accounting(self):
        buf = seg(0, 2, tail=10)
        ds = Dataset([buf])
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        fpr = Fingerprinter()
        cache.fingerprint_dataset(ds, fpr, [[(2 * CS, 2 * CS + 10)]])
        stats = cache.take_stats()
        assert stats.misses == 1
        assert fpr.hashed_bytes == 10  # only the short tail was re-hashed
        assert stats.bytes_skipped == 2 * CS

    def test_per_segment_mixed_dirtiness(self):
        a, b = seg(0, 3), seg(1, 3)
        ds = Dataset([a, b])
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        b[0] ^= 1
        warm = cache.fingerprint_dataset(
            ds, Fingerprinter(), [[], [(0, 1)]]
        )
        assert warm == Fingerprinter().fingerprint_all(ds.chunks(CS))
        stats = cache.take_stats()
        assert stats.hits == 5 and stats.misses == 1

    def test_none_entry_for_one_segment_rehashes_it(self):
        ds = Dataset([seg(0, 3), seg(1, 3)])
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(ds, Fingerprinter(), None)
        cache.take_stats()
        cache.fingerprint_dataset(ds, Fingerprinter(), [[], None])
        stats = cache.take_stats()
        assert stats.hits == 3 and stats.misses == 3


class TestInvalidation:
    def test_segment_resize_invalidates_segment(self):
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(Dataset([seg(0, 4)]), Fingerprinter(), None)
        cache.take_stats()
        grown = Dataset([seg(0, 5)])
        fps = cache.fingerprint_dataset(grown, Fingerprinter(), [[]])
        assert fps == Fingerprinter().fingerprint_all(grown.chunks(CS))
        stats = cache.take_stats()
        assert stats.hits == 0 and stats.misses == 5

    def test_config_change_clears_cache(self):
        cache = FingerprintCache(CS, "sha1")
        ds = Dataset([seg(0, 4)])
        cache.fingerprint_dataset(ds, Fingerprinter("sha1"), None)
        assert len(cache) == 4
        cache.ensure_compatible(CS, "blake2b")
        assert len(cache) == 0
        fps = cache.fingerprint_dataset(ds, Fingerprinter("blake2b"), [[]])
        assert fps == Fingerprinter("blake2b").fingerprint_all(ds.chunks(CS))

    def test_vanished_segment_dropped(self):
        cache = FingerprintCache(CS)
        cache.fingerprint_dataset(
            Dataset([seg(0, 2), seg(1, 2)]), Fingerprinter(), None
        )
        cache.fingerprint_dataset(Dataset([seg(0, 2)]), Fingerprinter(), None)
        assert len(cache) == 2

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            FingerprintCache(0)
