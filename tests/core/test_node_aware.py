"""Node-aware partner selection (paper §VI extension)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import DumpConfig, Strategy
from repro.core.shuffle import node_aware_shuffle, partners_of, rank_shuffle
from repro.sim import compute_metrics, simulate_dump


class TestNodeAwareShuffle:
    def test_is_permutation(self):
        shuffle = node_aware_shuffle([5, 3, 8, 1, 9, 2], k=3,
                                     rank_to_node=[0, 0, 1, 1, 2, 2])
        assert sorted(shuffle) == list(range(6))

    def test_one_rank_per_node_behaves_like_plain_shuffle_structure(self):
        totals = [100, 100, 10, 10, 10, 10]
        shuffle = node_aware_shuffle(totals, k=3, rank_to_node=list(range(6)))
        # Same head positions as Algorithm 2 (heaviest at 0, k, 2k, ...).
        assert shuffle[0] in (0, 1)
        assert shuffle[3] in (0, 1)

    def test_partners_land_on_distinct_nodes(self):
        n, k, rpn = 12, 3, 3
        rank_to_node = [r // rpn for r in range(n)]
        shuffle = node_aware_shuffle([1] * n, k, rank_to_node)
        # The greedy construction guarantees node-distinct K-windows except
        # across the wrap-around seam, which it cannot see.
        for pos in range(n - (k - 1)):
            me = shuffle[pos]
            nodes = {rank_to_node[me]}
            for partner in partners_of(pos, shuffle, k):
                assert rank_to_node[partner] not in nodes
                nodes.add(rank_to_node[partner])

    def test_fallback_when_fewer_nodes_than_k(self):
        # 2 nodes, K=4: impossible to be node-distinct; must not crash.
        shuffle = node_aware_shuffle([3, 1, 4, 1], k=4, rank_to_node=[0, 0, 1, 1])
        assert sorted(shuffle) == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            node_aware_shuffle([1, 2], k=0, rank_to_node=[0, 1])
        with pytest.raises(ValueError):
            node_aware_shuffle([1, 2], k=2, rank_to_node=[0])

    @given(
        st.lists(st.integers(0, 100), min_size=2, max_size=24),
        st.integers(2, 4),
        st.integers(1, 4),
    )
    def test_permutation_property(self, totals, k, rpn):
        rank_to_node = [r // rpn for r in range(len(totals))]
        shuffle = node_aware_shuffle(totals, k, rank_to_node)
        assert sorted(shuffle) == list(range(len(totals)))


class TestNodeAwareDump:
    def _metrics(self, node_aware):
        from repro.apps.synthetic import SyntheticWorkload

        n, rpn = 24, 4
        rank_to_node = [r // rpn for r in range(n)]
        w = SyntheticWorkload(chunks_per_rank=24, chunk_size=128,
                              frac_global=0.25, frac_zero=0.1)
        indices = w.build_indices(n, chunk_size=128)
        cfg = DumpConfig(replication_factor=3, chunk_size=128,
                         strategy=Strategy.COLL_DEDUP, f_threshold=10_000,
                         node_aware=node_aware)
        result = simulate_dump(indices, cfg, rank_to_node=rank_to_node)
        return compute_metrics(indices, result, rank_to_node=rank_to_node)

    def test_improves_node_distinct_replication(self):
        plain = self._metrics(node_aware=False)
        aware = self._metrics(node_aware=True)
        assert aware.node_replication_min >= plain.node_replication_min
        assert aware.node_replication_min >= 2

    def test_threaded_equivalence_with_node_mapping(self):
        """dump_output and the simulator must agree under node_aware too."""
        from repro.core import dump_output
        from repro.core.fingerprint import Fingerprinter
        from repro.core.local_dedup import local_dedup
        from repro.simmpi import World
        from repro.storage import Cluster
        from tests.conftest import make_rank_dataset

        n, rpn = 8, 2
        rank_to_node = [r // rpn for r in range(n)]
        cfg = DumpConfig(replication_factor=3, chunk_size=64,
                         f_threshold=4096, node_aware=True)
        cluster = Cluster(n, rank_to_node=rank_to_node)
        threaded = World(n).run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
        )
        fpr = Fingerprinter("sha1")
        indices = [local_dedup(make_rank_dataset(r), fpr, 64) for r in range(n)]
        sim = simulate_dump(indices, cfg, rank_to_node=rank_to_node)
        for rank in range(n):
            assert threaded[rank].partners == sim.reports[rank].partners
            assert threaded[rank].sent_bytes == sim.reports[rank].sent_bytes
            assert threaded[rank].received_bytes == sim.reports[rank].received_bytes
