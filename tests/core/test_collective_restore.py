"""LOAD_INPUT: the collective restart path."""

import pytest

from repro.core import DumpConfig, Strategy, dump_output
from repro.core.collective_restore import load_input
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64


def dump_and_load(n, strategy, k=3, fail_nodes=()):
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=4096)
    cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))

    def dump_prog(comm):
        return dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)

    World(n).run(dump_prog)
    for node_id in fail_nodes:
        cluster.fail_node(node_id)

    def load_prog(comm):
        dataset, report = load_input(comm, cluster, cfg)
        return dataset, report

    return World(n).run(load_prog)


class TestCollectiveRestore:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_roundtrip_all_ranks(self, strategy):
        n = 6
        results = dump_and_load(n, strategy)
        for rank, (dataset, report) in enumerate(results):
            assert dataset == make_rank_dataset(rank)
            assert report.total_bytes == make_rank_dataset(rank).nbytes

    def test_local_dedup_pulls_nothing(self):
        """With local-dedup every rank stored all its chunks: zero traffic."""
        results = dump_and_load(5, Strategy.LOCAL_DEDUP)
        for _dataset, report in results:
            assert report.pulled_chunks == 0
            assert report.served_chunks == 0

    def test_coll_dedup_pulls_discarded_chunks(self):
        """coll-dedup ranks that discarded chunks must pull them back."""
        n = 6
        results = dump_and_load(n, Strategy.COLL_DEDUP, k=2)
        pulled = sum(report.pulled_chunks for _d, report in results)
        served = sum(report.served_chunks for _d, report in results)
        assert pulled == served
        assert pulled > 0

    def test_restore_after_failures(self):
        n, k = 7, 3
        results = dump_and_load(n, Strategy.COLL_DEDUP, k=k, fail_nodes=(2, 5))
        for rank, (dataset, report) in enumerate(results):
            assert dataset == make_rank_dataset(rank)
            # Dead nodes serve nothing.
            assert 2 not in report.pulled_from
            assert 5 not in report.pulled_from
        # The failed ranks' datasets were rebuilt entirely from peers.
        assert results[2][1].local_chunks == 0
        assert results[2][1].pulled_chunks > 0

    def test_unrecoverable_aborts_world(self):
        n = 4
        with pytest.raises(Exception) as exc_info:
            dump_and_load(n, Strategy.COLL_DEDUP, k=1, fail_nodes=(1,))
        assert "unrecoverable" in str(exc_info.value)

    def test_traffic_is_only_the_missing_chunks(self):
        """Restart traffic must cover exactly the non-local distinct chunks —
        the locality the paper's local-storage design is about."""
        n = 6
        results = dump_and_load(n, Strategy.COLL_DEDUP, k=3)
        for rank, (_dataset, report) in enumerate(results):
            ds = make_rank_dataset(rank)
            distinct = len({bytes(c) for c in ds.chunks(CS)})
            assert report.local_chunks + report.pulled_chunks == distinct

    def test_matches_serial_restore(self):
        """LOAD_INPUT and restore_dataset rebuild identical datasets."""
        from repro.core import restore_dataset

        n = 6
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096)
        cluster = Cluster(n)
        World(n).run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
        )
        collective = World(n).run(lambda comm: load_input(comm, cluster, cfg))
        for rank in range(n):
            serial, _ = restore_dataset(cluster, rank)
            assert collective[rank][0] == serial
