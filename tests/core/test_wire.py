"""Window wire format: fixed slots, roundtrips, corruption detection."""

import pytest
from hypothesis import given, strategies as st

from repro.core.wire import decode_region, encode_record, iter_window_records, slot_nbytes

DIGEST = 20
CHUNK = 64


def fp_of(i):
    return bytes([i]) * DIGEST


class TestEncodeRecord:
    def test_slot_size_constant(self):
        full = encode_record(fp_of(1), b"x" * CHUNK, CHUNK)
        short = encode_record(fp_of(1), b"x", CHUNK)
        assert len(full) == len(short) == slot_nbytes(DIGEST, CHUNK)

    def test_oversized_chunk_rejected(self):
        with pytest.raises(ValueError):
            encode_record(fp_of(1), b"y" * (CHUNK + 1), CHUNK)

    def test_empty_payload(self):
        record = encode_record(fp_of(2), b"", CHUNK)
        (got_fp, got), = decode_region(record, DIGEST, CHUNK, 0, 1)
        assert got_fp == fp_of(2)
        assert got == b""


class TestDecodeRegion:
    def test_multi_slot_roundtrip(self):
        records = b"".join(
            encode_record(fp_of(i), bytes([i]) * (i + 1), CHUNK) for i in range(5)
        )
        decoded = decode_region(records, DIGEST, CHUNK, 1, 3)
        assert decoded == [(fp_of(i), bytes([i]) * (i + 1)) for i in (1, 2, 3)]

    def test_truncated_buffer_raises(self):
        record = encode_record(fp_of(1), b"a", CHUNK)
        with pytest.raises(ValueError, match="truncated"):
            decode_region(record[:-1], DIGEST, CHUNK, 0, 1)

    def test_corrupt_length_raises(self):
        record = bytearray(encode_record(fp_of(1), b"a", CHUNK))
        record[DIGEST : DIGEST + 4] = (CHUNK + 99).to_bytes(4, "little")
        with pytest.raises(ValueError, match="corrupt"):
            decode_region(bytes(record), DIGEST, CHUNK, 0, 1)


class TestIterWindowRecords:
    def test_full_window(self):
        window = b"".join(encode_record(fp_of(i), b"z" * i, CHUNK) for i in range(4))
        decoded = list(iter_window_records(window, DIGEST, CHUNK))
        assert [payload for _f, payload in decoded] == [b"z" * i for i in range(4)]

    def test_misaligned_window_raises(self):
        with pytest.raises(ValueError, match="multiple"):
            list(iter_window_records(b"\x00" * 13, DIGEST, CHUNK))

    def test_empty_window(self):
        assert list(iter_window_records(b"", DIGEST, CHUNK)) == []


@given(
    st.lists(
        st.tuples(st.binary(min_size=DIGEST, max_size=DIGEST), st.binary(max_size=CHUNK)),
        max_size=10,
    )
)
def test_roundtrip_property(records):
    window = b"".join(encode_record(f, c, CHUNK) for f, c in records)
    assert list(iter_window_records(window, DIGEST, CHUNK)) == records
