"""Window wire format: fixed slots, roundtrips, corruption detection."""

import pytest
from hypothesis import given, strategies as st

from repro.core.wire import (
    decode_region,
    decode_restore_reply,
    decode_restore_request,
    encode_record,
    encode_restore_reply,
    encode_restore_request,
    iter_window_records,
    slot_nbytes,
)

DIGEST = 20
CHUNK = 64


def fp_of(i):
    return bytes([i]) * DIGEST


class TestEncodeRecord:
    def test_slot_size_constant(self):
        full = encode_record(fp_of(1), b"x" * CHUNK, CHUNK)
        short = encode_record(fp_of(1), b"x", CHUNK)
        assert len(full) == len(short) == slot_nbytes(DIGEST, CHUNK)

    def test_oversized_chunk_rejected(self):
        with pytest.raises(ValueError):
            encode_record(fp_of(1), b"y" * (CHUNK + 1), CHUNK)

    def test_empty_payload(self):
        record = encode_record(fp_of(2), b"", CHUNK)
        (got_fp, got), = decode_region(record, DIGEST, CHUNK, 0, 1)
        assert got_fp == fp_of(2)
        assert got == b""


class TestDecodeRegion:
    def test_multi_slot_roundtrip(self):
        records = b"".join(
            encode_record(fp_of(i), bytes([i]) * (i + 1), CHUNK) for i in range(5)
        )
        decoded = decode_region(records, DIGEST, CHUNK, 1, 3)
        assert decoded == [(fp_of(i), bytes([i]) * (i + 1)) for i in (1, 2, 3)]

    def test_truncated_buffer_raises(self):
        record = encode_record(fp_of(1), b"a", CHUNK)
        with pytest.raises(ValueError, match="truncated"):
            decode_region(record[:-1], DIGEST, CHUNK, 0, 1)

    def test_corrupt_length_raises(self):
        record = bytearray(encode_record(fp_of(1), b"a", CHUNK))
        record[DIGEST : DIGEST + 4] = (CHUNK + 99).to_bytes(4, "little")
        with pytest.raises(ValueError, match="corrupt"):
            decode_region(bytes(record), DIGEST, CHUNK, 0, 1)


class TestIterWindowRecords:
    def test_full_window(self):
        window = b"".join(encode_record(fp_of(i), b"z" * i, CHUNK) for i in range(4))
        decoded = list(iter_window_records(window, DIGEST, CHUNK))
        assert [payload for _f, payload in decoded] == [b"z" * i for i in range(4)]

    def test_misaligned_window_raises(self):
        with pytest.raises(ValueError, match="multiple"):
            list(iter_window_records(b"\x00" * 13, DIGEST, CHUNK))

    def test_empty_window(self):
        assert list(iter_window_records(b"", DIGEST, CHUNK)) == []


@given(
    st.lists(
        st.tuples(st.binary(min_size=DIGEST, max_size=DIGEST), st.binary(max_size=CHUNK)),
        max_size=10,
    )
)
def test_roundtrip_property(records):
    window = b"".join(encode_record(f, c, CHUNK) for f, c in records)
    assert list(iter_window_records(window, DIGEST, CHUNK)) == records


# -- packed reduction-state codecs (RMT1 / RGV1) ------------------------------


def _make_table(n_ranks=4, k=3, f=64, node_of=None):
    from repro.core.hmerge import MergeTable, hmerge

    tables = [
        MergeTable.from_local(
            [fp_of(i) for i in range(rank, rank + 5)], rank, k, f,
            node_of=node_of,
        )
        for rank in range(n_ranks)
    ]
    out = tables[0]
    for t in tables[1:]:
        out = hmerge(out, t)
    return out


class TestMergeTableCodec:
    def test_roundtrip_preserves_entries_and_loads(self):
        import pickle

        from repro.core.wire import decode_merge_table, encode_merge_table

        table = _make_table()
        decoded = decode_merge_table(encode_merge_table(table))
        assert decoded.entries == table.entries
        assert decoded.rank_load == table.rank_load
        assert (decoded.k, decoded.f) == (table.k, table.f)
        # MergeTable pickling routes through the same codec (__reduce__),
        # which is what the reduction's sendrecv transport relies on.
        repickled = pickle.loads(pickle.dumps(table))
        assert repickled.entries == table.entries

    def test_node_of_travels(self):
        from repro.core.wire import decode_merge_table, encode_merge_table

        node_of = (0, 0, 1, 1)
        table = _make_table(node_of=node_of)
        decoded = decode_merge_table(encode_merge_table(table))
        assert decoded.node_of == node_of
        assert decode_merge_table(
            encode_merge_table(_make_table())
        ).node_of is None

    def test_empty_table(self):
        from repro.core.hmerge import MergeTable
        from repro.core.wire import decode_merge_table, encode_merge_table

        decoded = decode_merge_table(encode_merge_table(MergeTable(3, 8)))
        assert len(decoded) == 0
        assert (decoded.k, decoded.f) == (3, 8)

    def test_decoded_table_merges_further(self):
        """Zero-copy decoded columns are read-only views; hmerge is pure,
        so a decoded table must still be a legal merge operand."""
        from repro.core.hmerge import MergeTable, hmerge
        from repro.core.wire import decode_merge_table, encode_merge_table

        a = decode_merge_table(encode_merge_table(_make_table(n_ranks=2)))
        b = MergeTable.from_local([fp_of(9)], 3, 3, 64)
        merged = hmerge(a, b)
        merged.check_invariants()
        assert fp_of(9) in merged.entries

    def test_bad_magic_rejected(self):
        from repro.core.wire import decode_merge_table

        with pytest.raises(ValueError):
            decode_merge_table(b"XXXX" + b"\x00" * 64)


class TestGlobalViewCodec:
    def test_roundtrip(self):
        from repro.core.hmerge import GlobalView
        from repro.core.wire import decode_global_view, encode_global_view

        view = GlobalView.from_table(_make_table())
        blob, payload = encode_global_view(view)
        decoded = decode_global_view(blob)
        assert decoded.k == view.k
        assert {
            f: (e.freq, e.ranks) for f, e in decoded.entries.items()
        } == {f: (e.freq, e.ranks) for f, e in view.entries.items()}
        # The decoder restores the cached size from the decoded payload.
        assert decoded.wire_nbytes == payload == view.wire_nbytes

    def test_bad_magic_rejected(self):
        from repro.core.wire import decode_global_view

        with pytest.raises(ValueError):
            decode_global_view(b"YYYY" + b"\x00" * 64)


class TestRestoreRequestCodec:
    def test_roundtrip(self):
        fps = [fp_of(i) for i in (3, 0, 255, 3)]
        blob = encode_restore_request(fps)
        assert blob[:4] == b"RRQ1"
        assert decode_restore_request(blob) == fps

    def test_empty(self):
        blob = encode_restore_request([])
        assert decode_restore_request(blob) == []

    def test_trailing_null_fingerprints_survive(self):
        # Regression: an S-dtype decode null-strips trailing zero bytes —
        # a ~n/256 event per request that surfaced as missing-chunk errors
        # deep inside the reply round.
        fps = [b"\xaa" * 19 + b"\x00", b"\x00" * 20, b"\xbb" * 20]
        decoded = decode_restore_request(encode_restore_request(fps))
        assert decoded == fps
        assert all(isinstance(fp, bytes) and len(fp) == 20 for fp in decoded)

    def test_mixed_widths_fall_back_to_pickle(self):
        fps = [b"ab", b"abc"]
        blob = encode_restore_request(fps)
        assert blob[:4] == b"RRQP"
        assert decode_restore_request(blob) == fps

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_restore_request(b"XXXX" + b"\x00" * 16)


class TestRestoreReplyCodec:
    def test_roundtrip(self):
        payloads = [b"", b"x" * 5, b"\x00" * 3, b"yz"]
        blob = encode_restore_reply(payloads)
        assert blob[:4] == b"RRP1"
        assert decode_restore_reply(blob) == payloads

    def test_empty(self):
        assert decode_restore_reply(encode_restore_reply([])) == []

    def test_generator_input(self):
        payloads = [b"aa", b"bbb"]
        blob = encode_restore_reply(p for p in payloads)
        assert decode_restore_reply(blob) == payloads

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_restore_reply(b"XXXX" + b"\x00" * 8)
