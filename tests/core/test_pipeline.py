"""Pipelined dump: eligibility gating, byte-identity, overlap evidence.

Cross-backend identity of the pipelined dump is proven in
``tests/integration/test_backend_equivalence.py``; this file covers the
single-backend contracts — which configs may pipeline at all, that the
2-stage form engages for configs the 3-stage form must refuse (compression,
fingerprint cache), and that a span-level pipelined run records the
``pipeline`` spans and per-rank overlap gauge the analyzer consumes.
"""

import pytest

from repro.core import DumpConfig, Strategy, dump_output
from repro.core.pipeline import pipeline_eligible, pipeline_full_eligible
from repro.core.runner import run_collective
from repro.obs.analyzer import pipeline_stage_overlap
from repro.obs.export import capture_run
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64
N = 4
TIMEOUT = 60


def cfg(**kw):
    kw.setdefault("replication_factor", 3)
    kw.setdefault("chunk_size", CS)
    kw.setdefault("f_threshold", 4096)
    kw.setdefault("pipelined", True)
    return DumpConfig(**kw)


def dump(config, dump_id=0, cluster=None):
    cluster = cluster if cluster is not None else Cluster(N)
    reports, world = run_collective(
        N,
        lambda comm: dump_output(
            comm, make_rank_dataset(comm.rank), config, cluster,
            dump_id=dump_id,
        ),
        cluster=cluster,
        backend="thread",
        timeout=TIMEOUT,
    )
    return cluster, reports, world


def stored(cluster):
    return [
        sorted((fp, n.chunks.refcount(fp), n.chunks.get(fp))
               for fp in n.chunks.fingerprints())
        for n in cluster.nodes
    ]


class TestEligibility:
    def test_requires_pipelined_flag_and_batched(self):
        assert pipeline_eligible(cfg(), batched=True)
        assert not pipeline_eligible(cfg(pipelined=False), batched=True)
        assert not pipeline_eligible(cfg(), batched=False)

    def test_degraded_and_parity_fall_back(self):
        assert not pipeline_eligible(cfg(degraded=True), batched=True)
        assert not pipeline_eligible(
            cfg(redundancy="parity"), batched=True
        )

    def test_full_form_needs_no_dedup_uncompressed_no_cache(self):
        base = cfg(strategy=Strategy.NO_DEDUP)
        assert pipeline_full_eligible(base, batched=True, fpcache=None)
        assert not pipeline_full_eligible(
            cfg(strategy=Strategy.COLL_DEDUP), batched=True, fpcache=None
        )
        assert not pipeline_full_eligible(
            cfg(strategy=Strategy.NO_DEDUP, compress="rle"),
            batched=True, fpcache=None,
        )
        assert not pipeline_full_eligible(
            base, batched=True, fpcache=object()
        )


class TestByteIdentity:
    @pytest.mark.parametrize("compress", [None, "rle"])
    def test_pipelined_matches_strict(self, compress):
        """Both pipeline forms (3-stage when compress is None, 2-stage
        otherwise) must leave the exact cluster contents of a strict dump."""
        pipe, _r1, _w1 = dump(
            cfg(strategy=Strategy.NO_DEDUP, compress=compress)
        )
        strict, _r2, _w2 = dump(
            cfg(strategy=Strategy.NO_DEDUP, compress=compress,
                pipelined=False)
        )
        assert stored(pipe) == stored(strict)
        assert [
            sorted(n.manifest_keys()) for n in pipe.nodes
        ] == [sorted(n.manifest_keys()) for n in strict.nodes]

    def test_reports_match_strict(self):
        _c1, pipe_reports, _w1 = dump(cfg(strategy=Strategy.NO_DEDUP))
        _c2, strict_reports, _w2 = dump(
            cfg(strategy=Strategy.NO_DEDUP, pipelined=False)
        )
        for a, b in zip(pipe_reports, strict_reports):
            assert a.load == b.load
            assert a.sent_per_partner == b.sent_per_partner
            assert (a.stored_chunks, a.stored_bytes) == (
                b.stored_chunks, b.stored_bytes
            )
            assert (a.n_chunks, a.hashed_bytes) == (b.n_chunks, b.hashed_bytes)


class TestOverlapEvidence:
    def test_span_run_records_pipeline_spans_and_gauge(self):
        config = cfg(
            strategy=Strategy.NO_DEDUP, integrity="fast",
            trace_level="span",
        )
        _cluster, _reports, world = dump(config)
        run = capture_run(world, meta={"pipelined": True})
        result = pipeline_stage_overlap(run)
        assert set(result["stages"]) == {"hash", "exchange", "write"}
        assert result["active_s"] > 0
        gauges = result["rank_write_prefence_ratio"]
        assert sorted(gauges) == list(range(N))
        assert all(g > 0 for g in gauges.values())

    def test_strict_run_records_no_pipeline_spans(self):
        config = cfg(
            strategy=Strategy.NO_DEDUP, pipelined=False,
            trace_level="span",
        )
        _cluster, _reports, world = dump(config)
        result = pipeline_stage_overlap(capture_run(world))
        assert result["stages"] == {}
        assert result["rank_write_prefence_ratio"] == {}
