"""Dedup domains: bounded-scope reduction (DumpConfig.dedup_domain_size)."""

import pytest

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.core.fingerprint import Fingerprinter
from repro.core.local_dedup import local_dedup
from repro.sim import simulate_dump
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64


def indices_for(n):
    fpr = Fingerprinter("sha1")
    return [local_dedup(make_rank_dataset(r), fpr, CS) for r in range(n)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="dedup_domain_size"):
            DumpConfig(dedup_domain_size=0)


class TestSimulatedDomains:
    def test_domain_views_are_local(self):
        """With domains of 2, a chunk shared by ranks 0 and 5 (different
        domains) is not globally deduplicated — each domain sees freq 1."""
        n = 6
        indices = indices_for(n)
        global_cfg = DumpConfig(replication_factor=3, chunk_size=CS,
                                f_threshold=4096)
        domain_cfg = global_cfg.with_(dedup_domain_size=2)
        global_res = simulate_dump(indices, global_cfg)
        domain_res = simulate_dump(indices, domain_cfg)
        # Domain dedup finds less redundancy => more traffic.
        assert sum(r.sent_chunks for r in domain_res.reports) >= sum(
            r.sent_chunks for r in global_res.reports
        )
        # ... but fewer reduction rounds (log2(2)+... < log2(6)+...).
        assert len(domain_res.reduction_level_nbytes) < len(
            global_res.reduction_level_nbytes
        )

    def test_domain_size_one_equals_local_dedup_traffic(self):
        """Domains of 1: nothing to deduplicate across ranks — traffic
        matches local-dedup exactly."""
        n = 6
        indices = indices_for(n)
        domain = simulate_dump(
            indices,
            DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096,
                       dedup_domain_size=1, shuffle=False),
        )
        local = simulate_dump(
            indices,
            DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096,
                       strategy=Strategy.LOCAL_DEDUP),
        )
        assert sum(r.sent_chunks for r in domain.reports) == sum(
            r.sent_chunks for r in local.reports
        )

    def test_domain_covering_world_equals_global(self):
        n = 6
        indices = indices_for(n)
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096)
        global_res = simulate_dump(indices, cfg)
        domain_res = simulate_dump(indices, cfg.with_(dedup_domain_size=n))
        for a, b in zip(global_res.reports, domain_res.reports):
            assert a.sent_bytes == b.sent_bytes
            assert a.stored_bytes == b.stored_bytes

    def test_monotone_in_domain_size(self):
        """Bigger domains can only find more redundancy."""
        n = 8
        indices = indices_for(n)
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096)
        sent = []
        for d in (1, 2, 4, 8):
            res = simulate_dump(indices, cfg.with_(dedup_domain_size=d))
            sent.append(sum(r.sent_chunks for r in res.reports))
        assert sent == sorted(sent, reverse=True)


class TestThreadedDomains:
    @pytest.mark.parametrize("domain", [1, 2, 3, 4])
    def test_threaded_matches_simulator(self, domain):
        n = 8
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096,
                         dedup_domain_size=domain)
        cluster = Cluster(n)
        threaded = World(n).run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
        )
        sim = simulate_dump(indices_for(n), cfg)
        for rank in range(n):
            for field in ("sent_bytes", "received_bytes", "stored_bytes",
                          "discarded_chunks", "view_entries", "load"):
                assert getattr(threaded[rank], field) == getattr(
                    sim.reports[rank], field
                ), (domain, rank, field)

    def test_roundtrip_with_domains(self):
        n = 6
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, f_threshold=4096,
                         dedup_domain_size=2)
        cluster = Cluster(n)
        World(n).run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
        )
        cluster.fail_node(1)
        cluster.fail_node(4)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)
