"""The DUMP_OUTPUT collective: storage outcomes, accounting, invariants."""

import pytest

from repro.core import Dataset, DumpConfig, Strategy, dump_output
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64


def run_dump(n, strategy, k=3, shuffle=True, dataset_factory=make_rank_dataset,
             cluster=None, dump_id=0):
    cfg = DumpConfig(
        replication_factor=k,
        chunk_size=CS,
        strategy=strategy,
        f_threshold=4096,
        shuffle=shuffle,
    )
    if cluster is None:
        cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
    reports = World(n).run(
        lambda comm: dump_output(comm, dataset_factory(comm.rank), cfg, cluster, dump_id)
    )
    return reports, cluster


class TestReportAccounting:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_basic_fields(self, strategy):
        n = 5
        reports, _ = run_dump(n, strategy)
        for rank, r in enumerate(reports):
            ds = make_rank_dataset(rank)
            assert r.rank == rank
            assert r.strategy == strategy.value
            assert r.n_chunks == ds.chunk_count(CS)
            assert r.dataset_bytes == ds.nbytes
            assert r.hashed_bytes == ds.nbytes
            assert 0 < r.local_unique_chunks <= r.n_chunks
            assert len(r.sent_per_partner) == r.k - 1
            assert r.sent_chunks == sum(r.sent_per_partner)

    def test_send_recv_conservation(self):
        for strategy in Strategy:
            reports, _ = run_dump(6, strategy)
            assert sum(r.sent_chunks for r in reports) == sum(
                r.received_chunks for r in reports
            )
            assert sum(r.sent_bytes for r in reports) == sum(
                r.received_bytes for r in reports
            )

    def test_strategy_ordering_of_traffic(self):
        """The paper's headline: coll <= local <= no-dedup in total traffic."""
        totals = {}
        for strategy in Strategy:
            reports, _ = run_dump(8, strategy)
            totals[strategy] = sum(r.sent_bytes for r in reports)
        assert totals[Strategy.COLL_DEDUP] <= totals[Strategy.LOCAL_DEDUP]
        assert totals[Strategy.LOCAL_DEDUP] <= totals[Strategy.NO_DEDUP]
        assert totals[Strategy.COLL_DEDUP] < totals[Strategy.NO_DEDUP]

    def test_no_dedup_sends_everything_k_minus_1_times(self):
        n, k = 4, 3
        reports, _ = run_dump(n, Strategy.NO_DEDUP, k=k)
        for rank, r in enumerate(reports):
            assert r.sent_chunks == r.n_chunks * (k - 1)
            assert r.stored_chunks == r.n_chunks

    def test_local_dedup_sends_unique_k_minus_1_times(self):
        n, k = 4, 3
        reports, _ = run_dump(n, Strategy.LOCAL_DEDUP, k=k)
        for r in reports:
            assert r.sent_chunks == r.local_unique_chunks * (k - 1)

    def test_coll_dedup_discards_over_replicated(self):
        reports, _ = run_dump(6, Strategy.COLL_DEDUP, k=3)
        # The globally shared chunk is held by 6 ranks but only 3 designated.
        assert sum(r.discarded_chunks for r in reports) > 0

    def test_view_entries_on_every_rank_match(self):
        reports, _ = run_dump(7, Strategy.COLL_DEDUP)
        assert len({r.view_entries for r in reports}) == 1
        assert reports[0].view_entries > 0

    def test_baselines_have_no_view(self):
        for strategy in (Strategy.NO_DEDUP, Strategy.LOCAL_DEDUP):
            reports, _ = run_dump(4, strategy)
            assert all(r.view_entries == 0 for r in reports)


class TestStorageOutcomes:
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_replication_factor_reached(self, strategy, k):
        """Every chunk of every dataset must live on >= min(k, holders-
        compatible) nodes after the dump."""
        n = 6
        reports, cluster = run_dump(n, strategy, k=k)
        for rank in range(n):
            ds = make_rank_dataset(rank)
            for chunk in ds.chunks(CS):
                import hashlib

                fp = hashlib.sha1(chunk).digest()
                holders = cluster.replica_nodes(fp)
                assert len(holders) >= min(k, n), (
                    strategy,
                    k,
                    f"chunk {fp.hex()[:8]} on {len(holders)} nodes",
                )

    def test_manifests_replicated_to_partners(self):
        n, k = 5, 3
        reports, cluster = run_dump(n, Strategy.COLL_DEDUP, k=k)
        for rank in range(n):
            holders = sum(
                1 for node in cluster.nodes if node.has_manifest(rank, 0)
            )
            assert holders == k  # own node + k-1 partners

    def test_window_traffic_matches_report(self):
        n = 5
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, strategy=Strategy.COLL_DEDUP,
                         f_threshold=4096)
        cluster = Cluster(n)
        world = World(n)
        reports = world.run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
        )
        for rank, r in enumerate(reports):
            exchange = world.comms[rank].trace.counters("exchange")
            # Batched hot path: one put per non-empty partner region; every
            # sent chunk still accounts for exactly one wire slot.
            assert exchange.put_msgs == sum(1 for c in r.sent_per_partner if c)
            assert exchange.chunks == r.sent_chunks

    def test_window_traffic_matches_report_legacy(self):
        n = 5
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, strategy=Strategy.COLL_DEDUP,
                         f_threshold=4096, batched=False)
        cluster = Cluster(n)
        world = World(n)
        reports = world.run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
        )
        for rank, r in enumerate(reports):
            exchange = world.comms[rank].trace.counters("exchange")
            assert exchange.put_msgs == r.sent_chunks

    def test_dump_ids_keep_checkpoints_separate(self):
        n = 4
        cluster = Cluster(n)
        run_dump(n, Strategy.COLL_DEDUP, cluster=cluster, dump_id=0)
        run_dump(n, Strategy.COLL_DEDUP, cluster=cluster, dump_id=1)
        for rank in range(n):
            assert cluster.nodes[rank].has_manifest(rank, 0)
            assert cluster.nodes[rank].has_manifest(rank, 1)


class TestShuffleModes:
    def test_no_shuffle_uses_identity_order(self):
        reports, _ = run_dump(6, Strategy.COLL_DEDUP, shuffle=False)
        assert [r.shuffle_position for r in reports] == list(range(6))

    def test_shuffle_positions_form_permutation(self):
        reports, _ = run_dump(6, Strategy.COLL_DEDUP, shuffle=True)
        assert sorted(r.shuffle_position for r in reports) == list(range(6))

    def test_baselines_ignore_shuffle_flag(self):
        for shuffle in (True, False):
            reports, _ = run_dump(4, Strategy.NO_DEDUP, shuffle=shuffle)
            assert [r.shuffle_position for r in reports] == list(range(4))


class TestEdgeCases:
    def test_single_rank_k1(self):
        reports, cluster = run_dump(1, Strategy.COLL_DEDUP, k=1)
        assert reports[0].sent_chunks == 0
        assert cluster.nodes[0].chunks.chunk_count > 0

    def test_k_larger_than_world(self):
        reports, _ = run_dump(3, Strategy.COLL_DEDUP, k=10)
        assert all(r.k == 3 for r in reports)

    def test_empty_dataset_rank(self):
        def factory(rank):
            if rank == 1:
                return Dataset([b""])
            return make_rank_dataset(rank)

        reports, cluster = run_dump(4, Strategy.COLL_DEDUP, dataset_factory=factory)
        assert reports[1].n_chunks == 0
        assert reports[1].sent_chunks == 0

    def test_uneven_dataset_sizes(self):
        """'it is not required for all processes to write the same amount of
        data' (Sec. III-A)."""

        def factory(rank):
            return Dataset([bytes([rank]) * (CS * (rank + 1))])

        reports, cluster = run_dump(4, Strategy.COLL_DEDUP, dataset_factory=factory)
        for rank, r in enumerate(reports):
            assert r.n_chunks == rank + 1
