"""CDC-chunked DUMP_OUTPUT: the 'arbitrarily large chunk sizes' adaptation
the paper's Section IV promises, end to end."""

import hashlib

import pytest

from repro.core import Dataset, DumpConfig, Strategy, dump_output, restore_dataset
from repro.simmpi import World
from repro.storage import Cluster


def _stream(n, tag):
    out = bytearray()
    i = 0
    while len(out) < n:
        out.extend(hashlib.blake2b(tag + i.to_bytes(4, "little")).digest())
        i += 1
    return bytes(out[:n])


class TestCDCConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="chunking"):
            DumpConfig(chunking="variable")
        with pytest.raises(ValueError, match="chunk_size"):
            DumpConfig(chunking="cdc", chunk_size=32)

    def test_fixed_chunker_matches_split(self):
        from repro.core.chunking import split_chunks

        cfg = DumpConfig(chunk_size=128)
        chunker = cfg.make_chunker()
        data = _stream(1000, b"x")
        assert list(chunker(data)) == split_chunks(data, 128)

    def test_cdc_chunker_bounds(self):
        cfg = DumpConfig(chunking="cdc", chunk_size=1024)
        chunker = cfg.make_chunker()
        chunks = list(chunker(_stream(50_000, b"y")))
        assert b"".join(chunks) == _stream(50_000, b"y")
        assert all(len(c) <= 1024 for c in chunks)


class TestCDCDump:
    def make_dataset(self, rank, shift=False):
        shared = _stream(16_000, b"shared")
        if shift:
            # Per-rank prefix of different lengths shifts the shared stream —
            # the scenario where fixed chunking finds no cross-rank dedup.
            shared = bytes([rank]) * (rank + 1) + shared
        unique = _stream(4_000, b"u%d" % rank)
        return Dataset([shared, unique])

    def run(self, chunking, shift):
        n = 5
        cfg = DumpConfig(replication_factor=3, chunk_size=1024,
                         chunking=chunking, f_threshold=4096)
        cluster = Cluster(n)
        reports = World(n).run(
            lambda comm: dump_output(
                comm, self.make_dataset(comm.rank, shift), cfg, cluster
            )
        )
        return reports, cluster, n

    @pytest.mark.parametrize("chunking", ["fixed", "cdc"])
    @pytest.mark.parametrize("shift", [False, True])
    def test_roundtrip(self, chunking, shift):
        reports, cluster, n = self.run(chunking, shift)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == self.make_dataset(rank, shift)

    def test_cdc_survives_shift_fixed_does_not(self):
        """On byte-shifted shared data, CDC still finds the cross-rank
        duplicates (and therefore sends less) while fixed chunking sees
        every rank's stream as unique."""
        fixed_reports, _c1, _ = self.run("fixed", shift=True)
        cdc_reports, _c2, _ = self.run("cdc", shift=True)
        fixed_sent = sum(r.sent_bytes for r in fixed_reports)
        cdc_sent = sum(r.sent_bytes for r in cdc_reports)
        assert cdc_sent < fixed_sent * 0.6

    def test_equal_on_aligned_data(self):
        """Without shifts both chunkings find the shared stream; CDC's
        discard counts confirm the global view still works on variable-size
        chunks."""
        _reports, cluster, n = self.run("cdc", shift=False)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == self.make_dataset(rank, shift=False)
