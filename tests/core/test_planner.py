"""Replication planning: store/discard/send decisions and Load vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hmerge import GlobalView, MergeEntry
from repro.core.local_dedup import index_from_fingerprints
from repro.core.planner import ReplicationPlan, build_plan, round_robin_share


def fp(i):
    return bytes([i]) * 20


def view_of(entries, k=3):
    return GlobalView(entries={f: e for f, e in entries.items()}, k=k)


class TestRoundRobinShare:
    def test_even_split(self):
        # 4 extra copies over 2 designated ranks -> 2 each
        assert round_robin_share(4, 2, 0) == 2
        assert round_robin_share(4, 2, 1) == 2

    def test_uneven_split_front_loaded(self):
        # 3 extra over 2 ranks -> 2 for index 0, 1 for index 1
        assert round_robin_share(3, 2, 0) == 2
        assert round_robin_share(3, 2, 1) == 1

    def test_fewer_copies_than_ranks(self):
        assert round_robin_share(1, 3, 0) == 1
        assert round_robin_share(1, 3, 1) == 0
        assert round_robin_share(1, 3, 2) == 0

    def test_no_extra(self):
        assert round_robin_share(0, 2, 0) == 0

    def test_out_of_range_index(self):
        assert round_robin_share(2, 2, 5) == 0

    @given(st.integers(0, 20), st.integers(1, 10))
    def test_shares_sum_to_extra(self, extra, d):
        assert sum(round_robin_share(extra, d, j) for j in range(d)) == extra


class TestBuildPlanCollDedup:
    def test_unique_chunk_stored_and_fully_replicated(self):
        idx = index_from_fingerprints([fp(1)], 64)
        plan = build_plan(0, idx, view_of({}), k=3, world_size=5)
        assert plan.store_fps == [fp(1)]
        assert [len(p) for p in plan.partner_chunks] == [1, 1]
        assert plan.load == [1, 1, 1]

    def test_not_designated_discards(self):
        idx = index_from_fingerprints([fp(1)], 64)
        view = view_of({fp(1): MergeEntry(freq=5, ranks=(1, 2, 3))})
        plan = build_plan(0, idx, view, k=3, world_size=5)
        assert plan.store_fps == []
        assert plan.discarded_fps == [fp(1)]
        assert plan.load == [0, 0, 0]

    def test_designated_with_enough_replicas_stores_only(self):
        idx = index_from_fingerprints([fp(1)], 64)
        view = view_of({fp(1): MergeEntry(freq=5, ranks=(0, 1, 2))})
        plan = build_plan(0, idx, view, k=3, world_size=5)
        assert plan.store_fps == [fp(1)]
        assert plan.send_total == 0

    def test_designated_tops_up_missing_replicas(self):
        """D=1 < K=3: the single designated rank sends K-D=2 copies."""
        idx = index_from_fingerprints([fp(1)], 64)
        view = view_of({fp(1): MergeEntry(freq=1, ranks=(0,))})
        plan = build_plan(0, idx, view, k=3, world_size=5)
        assert plan.load == [1, 1, 1]

    def test_topup_round_robin_between_designated(self):
        """D=2 < K=4: 2 extra copies, one per designated rank, each going
        to that rank's first partner slot."""
        idx = index_from_fingerprints([fp(1)], 64)
        view = view_of({fp(1): MergeEntry(freq=2, ranks=(0, 3))}, k=4)
        plan0 = build_plan(0, idx, view, k=4, world_size=6)
        plan3 = build_plan(3, idx, view, k=4, world_size=6)
        assert plan0.load == [1, 1, 0, 0]
        assert plan3.load == [1, 1, 0, 0]

    def test_topup_uneven_assignment(self):
        """D=2 < K=5: 3 extra copies -> designated index 0 sends 2, index 1
        sends 1."""
        idx = index_from_fingerprints([fp(1)], 64)
        view = view_of({fp(1): MergeEntry(freq=2, ranks=(2, 4))}, k=5)
        plan2 = build_plan(2, idx, view, k=5, world_size=8)
        plan4 = build_plan(4, idx, view, k=5, world_size=8)
        assert plan2.load == [1, 1, 1, 0, 0]
        assert plan4.load == [1, 1, 0, 0, 0]

    def test_k_capped_by_world_size(self):
        idx = index_from_fingerprints([fp(1)], 64)
        plan = build_plan(0, idx, view_of({}), k=10, world_size=3)
        assert plan.k == 3
        assert plan.load == [1, 1, 1]

    def test_k1_local_only(self):
        idx = index_from_fingerprints([fp(1), fp(2)], 64)
        plan = build_plan(0, idx, view_of({}), k=1, world_size=4)
        assert plan.load == [2]
        assert plan.partner_chunks == []


class TestBuildPlanBaselines:
    def test_local_dedup_sends_unique_to_all_partners(self):
        idx = index_from_fingerprints([fp(1), fp(1), fp(2)], 64)
        plan = build_plan(0, idx, None, k=3, world_size=4)
        assert plan.load == [2, 2, 2]

    def test_no_dedup_replicates_every_occurrence(self):
        idx = index_from_fingerprints([fp(1), fp(1), fp(2)], 64)
        plan = build_plan(0, idx, None, k=3, world_size=4, dedup_local=False)
        assert plan.load == [3, 3, 3]
        assert plan.store_fps == [fp(1), fp(1), fp(2)]


class TestPlanAccounting:
    def test_byte_helpers(self):
        idx = index_from_fingerprints([fp(1), fp(2)], 64, last_chunk_size=10)
        plan = build_plan(0, idx, view_of({}), k=2, world_size=3)
        sizes = idx.chunk_sizes
        assert plan.store_bytes(sizes) == 74
        assert plan.send_bytes(sizes) == 74
        assert plan.send_total == 2

    def test_load_padded_to_k(self):
        plan = ReplicationPlan(rank=0, k=4)
        plan.partner_chunks = [[fp(1)]]
        assert plan.load == [0, 1, 0, 0]
