"""Algorithm 2: rank shuffling and partner relations."""

import pytest
from hypothesis import given, strategies as st

from repro.core.shuffle import (
    identity_shuffle,
    inverse_positions,
    partners_of,
    rank_shuffle,
    senders_to,
)


class TestRankShuffle:
    def test_paper_figure2_example(self):
        """Two heavy senders (100 chunks) and four light (10), K=3: the
        heaviest is interleaved with the two lightest."""
        shuffle = rank_shuffle([100, 100, 10, 10, 10, 10], k=3)
        assert shuffle == [0, 5, 4, 1, 3, 2]

    def test_is_permutation(self):
        shuffle = rank_shuffle([5, 1, 9, 7, 3, 3, 0], k=3)
        assert sorted(shuffle) == list(range(7))

    def test_k1_gives_descending_order(self):
        assert rank_shuffle([1, 5, 3], k=1) == [1, 2, 0]

    def test_uniform_loads_deterministic(self):
        assert rank_shuffle([7, 7, 7, 7], k=2) == [0, 3, 1, 2]

    def test_empty(self):
        assert rank_shuffle([], k=3) == []

    def test_single(self):
        assert rank_shuffle([42], k=3) == [0]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            rank_shuffle([1], k=0)

    def test_heaviest_first(self):
        shuffle = rank_shuffle([1, 100, 2, 3], k=4)
        assert shuffle[0] == 1

    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=40),
        st.integers(1, 6),
    )
    def test_permutation_property(self, loads, k):
        shuffle = rank_shuffle(loads, k)
        assert sorted(shuffle) == list(range(len(loads)))

    @given(
        st.lists(st.integers(0, 1000), min_size=2, max_size=30),
        st.integers(2, 5),
    )
    def test_heavy_ranks_spread_out(self, loads, k):
        """No two of the top-⌈N/K⌉ heaviest ranks are adjacent in shuffled
        order when the group structure allows it (each head is followed by
        K-1 tail entries)."""
        n = len(loads)
        shuffle = rank_shuffle(loads, k)
        order = sorted(range(n), key=lambda r: (-loads[r], r))
        n_heads = (n + k - 1) // k
        heads = set(order[:n_heads])
        positions = [i for i, r in enumerate(shuffle) if r in heads]
        # heads occupy positions 0, k, 2k, ... by construction
        assert positions == [i * k for i in range(len(positions))] or n < k


class TestPartnersAndSenders:
    def test_partners_basic(self):
        shuffle = [0, 1, 2, 3, 4]
        assert partners_of(0, shuffle, k=3) == [1, 2]
        assert partners_of(3, shuffle, k=3) == [4, 0]

    def test_partners_capped_at_world(self):
        shuffle = [0, 1, 2]
        assert partners_of(0, shuffle, k=10) == [1, 2]

    def test_k1_no_partners(self):
        assert partners_of(0, [0, 1], k=1) == []

    def test_senders_inverse_of_partners(self):
        shuffle = rank_shuffle([3, 1, 4, 1, 5, 9, 2, 6], k=3)
        k = 3
        for pos in range(len(shuffle)):
            me = shuffle[pos]
            for partner in partners_of(pos, shuffle, k):
                ppos = shuffle.index(partner)
                assert me in senders_to(ppos, shuffle, k)

    def test_identity_shuffle(self):
        assert identity_shuffle(4) == [0, 1, 2, 3]

    def test_inverse_positions(self):
        shuffle = [2, 0, 3, 1]
        inv = inverse_positions(shuffle)
        for pos, rank in enumerate(shuffle):
            assert inv[rank] == pos
