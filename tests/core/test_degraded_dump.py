"""Degraded dumps: the collective completes despite dead nodes.

``DumpConfig.degraded`` turns node failures from fatal into accounted-for:
ranks whose node died keep computing and sending (their data survives on
live partners), dead nodes store nothing, and the dump reports what was
dropped.  A follow-up repair tops the short replicas back up to K.
"""

import pytest

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.repair import repair_cluster, scan_cluster
from repro.simmpi import World
from repro.simmpi.errors import WorldError
from repro.storage import Cluster, FailureInjector

from tests.conftest import make_rank_dataset

CS = 64


def degraded_dump(n, k=3, strategy=Strategy.COLL_DEDUP, dead=(), batched=True,
                  phase_hook=None):
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=4096, batched=batched, degraded=True)
    cluster = Cluster(n)
    for node_id in dead:
        cluster.fail_node(node_id)
    reports = World(n).run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg,
                                 cluster, phase_hook=phase_hook)
    )
    return cluster, reports


class TestConfig:
    def test_degraded_parity_rejected(self):
        with pytest.raises(ValueError):
            DumpConfig(degraded=True, redundancy="parity")

    def test_non_degraded_dump_raises_on_dead_node(self):
        cluster = Cluster(4)
        cluster.fail_node(1)
        cfg = DumpConfig(replication_factor=2, chunk_size=CS, f_threshold=4096)
        with pytest.raises(WorldError):
            World(4).run(
                lambda comm: dump_output(
                    comm, make_rank_dataset(comm.rank), cfg, cluster
                )
            )


class TestHealthyCluster:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_degraded_flag_is_inert_when_all_alive(self, strategy):
        n = 5
        cluster, reports = degraded_dump(n, strategy=strategy)
        assert all(not r.degraded for r in reports)
        assert all(r.dropped_chunks == 0 for r in reports)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)


class TestDeadAtDumpTime:
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("batched", [True, False])
    def test_dump_completes_and_every_rank_restores(self, strategy, batched):
        n, dead = 7, (2, 5)
        cluster, reports = degraded_dump(n, strategy=strategy, dead=dead,
                                         batched=batched)
        assert all(r.degraded for r in reports)
        # Dead-node ranks stored nothing locally...
        for node_id in dead:
            assert cluster.nodes[node_id].chunks.physical_bytes == 0
        # ...but their data landed on live partners: every rank restores.
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)
        assert FailureInjector(cluster).audit(0).all_recoverable

    def test_dead_rank_data_short_one_replica_until_repaired(self):
        n, k = 7, 3
        cluster, _reports = degraded_dump(n, k=k, dead=(2,))
        scan = scan_cluster(cluster, k)
        # The dead rank has no local copy, so some chunks sit below K...
        assert not scan.clean
        assert all(d.deficit >= 1 for d in scan.chunks.values())
        # ...and repair tops them back up.
        report = repair_cluster(cluster, k)
        assert report.complete
        assert scan_cluster(cluster, k).clean

    def test_no_dead_node_receives_or_stores(self):
        n, dead = 6, (0, 3)
        cluster, reports = degraded_dump(n, dead=dead)
        for node_id in dead:
            node = cluster.nodes[node_id]
            assert node.chunks.physical_bytes == 0
            assert not node.manifest_keys()
        for rank, report in enumerate(reports):
            if rank not in dead:
                assert report.dropped_chunks == 0


class TestMidDumpDeath:
    def test_victim_drops_its_commits_and_dump_survives(self):
        n, k, victim = 7, 3, 3
        cfg = DumpConfig(replication_factor=k, chunk_size=CS, f_threshold=4096,
                         degraded=True)
        cluster = Cluster(n)
        injector = FailureInjector(cluster)
        hook = injector.mid_dump_hook(victim, phase="exchange")
        reports = World(n).run(
            lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg,
                                     cluster, phase_hook=hook)
        )
        assert reports[victim].dropped_chunks > 0
        assert reports[victim].dropped_bytes > 0
        assert cluster.nodes[victim].chunks.physical_bytes == 0
        for rank, report in enumerate(reports):
            if rank != victim:
                assert report.dropped_chunks == 0
        # The victim died *after* the liveness snapshot, so its own data
        # still reached K live partners: everything restores.
        assert FailureInjector(cluster).audit(0).all_recoverable
        repair_cluster(cluster, k)
        assert scan_cluster(cluster, k).clean
