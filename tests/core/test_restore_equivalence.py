"""Equivalence of the batched restore hot path with the legacy loop.

The batched pipeline — vectorised source planning (:mod:`restore_plan`),
``get_many`` coalesced reads, packed ``RRQ1``/``RRP1`` request/reply blobs
and zero-copy segment cutting — is pure performance work: restored
datasets, RestoreReport/CollectiveRestoreReport accounting and the
per-node source distribution must all be identical to the seed per-chunk
implementation, across every strategy, sharded and flat stores,
compression, and degraded (failed-node) clusters.  These tests pin that,
property-style where the input space matters — the restore-side mirror of
``test_hotpath_equivalence.py``.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.core.chunking import Dataset
from repro.core.collective_restore import load_input
from repro.core.restore_plan import (
    RECONSTRUCT,
    cut_segments,
    dedup_fingerprints,
    plan_restore,
)
from repro.core.runner import run_collective
from repro.simmpi import World
from repro.storage import Cluster
from repro.storage.local_store import StorageError

from tests.conftest import make_rank_dataset

CS = 64


# -- planning primitives ------------------------------------------------------


class TestDedupFingerprints:
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=30), min_size=0, max_size=60
        )
    )
    def test_matches_dict_sweep(self, ids):
        raw = [bytes([i]) * 20 for i in ids]
        distinct, index = dedup_fingerprints(raw)
        assert len(set(distinct)) == len(distinct)
        assert [distinct[j] for j in index.tolist()] == raw
        # First-occurrence order — the legacy loop's iteration order.
        seen = list(dict.fromkeys(raw))
        assert distinct == seen

    def test_trailing_null_digests_survive(self):
        # Regression: an S-dtype dedup would strip trailing zero bytes and
        # alias distinct digests (found by the dst batched-vs-legacy oracle).
        a = b"\x01" * 19 + b"\x00"
        b = b"\x01" * 19 + b"\x02"
        c = b"\x00" * 20
        distinct, index = dedup_fingerprints([a, b, c, a])
        assert distinct == [a, b, c]
        assert index.tolist() == [0, 1, 2, 0]
        assert all(isinstance(fp, bytes) and len(fp) == 20 for fp in distinct)

    def test_mixed_widths_fall_back(self):
        raw = [b"ab", b"abc", b"ab"]
        distinct, index = dedup_fingerprints(raw)
        assert distinct == [b"ab", b"abc"]
        assert index.tolist() == [0, 1, 0]


class TestCutSegments:
    @given(data=st.data())
    def test_matches_join_then_slice(self, data):
        chunk_lens = data.draw(
            st.lists(st.integers(min_value=0, max_value=9), max_size=12),
            label="chunk_lens",
        )
        rng = random.Random(data.draw(st.integers(0, 2**16), label="seed"))
        chunks = [rng.randbytes(n) for n in chunk_lens]
        total = sum(chunk_lens)
        # A random partition of the total into segment lengths (zero-length
        # segments included).
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, total), max_size=6), label="cuts"
            )
        )
        bounds = [0, *cuts, total]
        seg_lens = [b - a for a, b in zip(bounds, bounds[1:])]
        stream = b"".join(chunks)
        expected = [
            stream[a:b] for a, b in zip(bounds, bounds[1:])
        ]
        assert cut_segments(chunks, seg_lens, rank=0) == expected

    def test_mismatch_raises(self):
        with pytest.raises(StorageError, match="manifest inconsistent"):
            cut_segments([b"abcd"], [5], rank=3)

    def test_zero_copy_on_boundaries(self):
        a, b = b"x" * 8, b"y" * 8
        segments = cut_segments([a, b], [8, 8], rank=0)
        assert segments[0] is a and segments[1] is b


class TestPlanRestore:
    def _dumped(self, n=5, fail=(), strategy=Strategy.LOCAL_DEDUP):
        cfg = DumpConfig(replication_factor=3, chunk_size=CS, strategy=strategy)
        cluster = Cluster(n, dedup=True)
        World(n).run(
            lambda comm: dump_output(
                comm, make_rank_dataset(comm.rank), cfg, cluster
            )
        )
        for node_id in fail:
            cluster.fail_node(node_id)
        return cluster

    def test_all_local_when_node_alive(self):
        cluster = self._dumped()
        manifest = cluster.find_manifest(1, 0)
        plan = plan_restore(cluster, 1, manifest)
        assert plan.local.all()
        assert not plan.remote_groups()
        assert [plan.fps[j] for j in plan.index.tolist()] == list(
            manifest.fingerprints
        )

    def test_failed_node_goes_remote_least_loaded(self):
        cluster = self._dumped(fail=(0,))
        plan = plan_restore(cluster, 0, cluster.find_manifest(0, 0))
        assert not plan.local.any()
        groups = plan.remote_groups()
        assert groups and 0 not in groups
        assert sorted(j for g in groups.values() for j in g) == list(
            range(len(plan.fps))
        )

    def test_eligible_nodes_restricts_sources(self):
        cluster = self._dumped(fail=(0,))
        manifest = cluster.find_manifest(0, 0)
        everyone = plan_restore(cluster, 0, manifest)
        allowed = set(everyone.remote_groups())
        keep = sorted(allowed)[:1]
        # Restricting to a subset must never plan a source outside it.
        plan = plan_restore(
            cluster, 0, manifest, eligible_nodes=set(keep),
            allow_reconstruct=True,
        )
        live = set(plan.remote_groups())
        assert live <= set(keep)

    def test_unrecoverable_raises_without_reconstruct(self):
        cluster = self._dumped(n=4)
        manifest = cluster.find_manifest(0, 0)
        for node in cluster.nodes:
            cluster.fail_node(node.node_id)
        with pytest.raises(StorageError, match="unrecoverable"):
            plan_restore(cluster, 0, manifest, allow_reconstruct=False)
        plan = plan_restore(cluster, 0, manifest, allow_reconstruct=True)
        assert (plan.sources == RECONSTRUCT).all()


# -- end-to-end equivalence ---------------------------------------------------


def _random_datasets(n, seed, chunk_size=CS):
    """Per-rank datasets mixing shared, duplicated and unique chunks with
    randomised segment structure — the redundancy profiles the paper's
    strategies distinguish."""
    rng = random.Random(seed)
    shared = rng.randbytes(chunk_size * rng.randint(0, 3))
    datasets = {}
    for rank in range(n):
        body = shared + rng.randbytes(
            chunk_size * rng.randint(1, 6) + rng.randint(0, chunk_size - 1)
        )
        if rng.random() < 0.5:  # local duplicates
            body += body[: chunk_size * 2]
        cut = rng.randint(0, len(body))
        segments = [body[:cut], body[cut:]]
        if rng.random() < 0.3:
            segments.insert(rng.randint(0, 2), b"")
        datasets[rank] = Dataset(segments)
    return datasets


def _dump(n, strategy, shards, compress, seed, k=3):
    cfg = DumpConfig(
        replication_factor=k, chunk_size=CS, strategy=strategy,
        compress=compress,
    )
    cluster = Cluster(
        n, dedup=(strategy is not Strategy.NO_DEDUP), shard_count=shards
    )
    datasets = _random_datasets(n, seed)
    World(n).run(
        lambda comm: dump_output(comm, datasets[comm.rank], cfg, cluster)
    )
    return cluster, datasets, cfg


class TestRestoreDatasetEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        strategy=st.sampled_from(list(Strategy)),
        shards=st.sampled_from([1, 4]),
        compress=st.sampled_from([None, "zlib-1"]),
        n_fail=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_batched_matches_legacy(
        self, strategy, shards, compress, n_fail, seed
    ):
        n = 5
        cluster, datasets, _cfg = _dump(n, strategy, shards, compress, seed)
        for node_id in range(n_fail):
            cluster.fail_node(node_id)
        for rank in range(n):
            legacy_ds, legacy_rep = restore_dataset(cluster, rank, batched=False)
            batched_ds, batched_rep = restore_dataset(cluster, rank, batched=True)
            # Byte-identical data, field-identical report — including the
            # per-node source distribution (the locality-aware plan must
            # reproduce the legacy least-loaded greedy exactly).
            assert batched_ds == legacy_ds == datasets[rank]
            assert vars(batched_rep) == vars(legacy_rep)


class TestLoadInputEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        strategy=st.sampled_from(list(Strategy)),
        shards=st.sampled_from([1, 4]),
        compress=st.sampled_from([None, "zlib-1"]),
        n_fail=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_batched_matches_legacy(
        self, strategy, shards, compress, n_fail, seed
    ):
        n = 5
        cluster, datasets, cfg = _dump(n, strategy, shards, compress, seed)
        for node_id in range(n_fail):
            cluster.fail_node(node_id)

        def run(batched):
            from dataclasses import replace

            run_cfg = replace(cfg, batched=batched)
            return World(n).run(
                lambda comm: load_input(comm, cluster, run_cfg)
            )

        legacy, batched = run(False), run(True)
        for rank in range(n):
            assert batched[rank][0] == legacy[rank][0] == datasets[rank]
            assert vars(batched[rank][1]) == vars(legacy[rank][1])

    @pytest.mark.parametrize("batched", [False, True])
    def test_process_backend_roundtrip(self, batched):
        """The packed request/reply path under real fork-based ranks."""
        n = 4
        cluster, datasets, cfg = _dump(
            n, Strategy.COLL_DEDUP, shards=1, compress=None, seed=77, k=2
        )
        cluster.fail_node(0)
        from dataclasses import replace

        run_cfg = replace(cfg, batched=batched)

        def prog(comm, cluster):
            ds, rep = load_input(comm, cluster, run_cfg)
            return ds.to_bytes(), vars(rep)

        results, _world = run_collective(
            n, prog, cluster, cluster=cluster, backend="process", timeout=120
        )
        for rank, (blob, rep) in enumerate(results):
            assert blob == datasets[rank].to_bytes()
            assert rep["rank"] == rank
