"""Per-phase trace accounting of DUMP_OUTPUT: what the cost model consumes
must reflect what the phases actually moved."""

import pytest

from repro.core import DumpConfig, Strategy, dump_output
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64


def run_traced(n, strategy, k=3):
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=4096)
    cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
    world = World(n)
    reports = world.run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
    )
    return reports, [world.comms[r].trace for r in range(n)]


class TestPhaseTraces:
    def test_reduction_phase_only_for_coll(self):
        for strategy in (Strategy.NO_DEDUP, Strategy.LOCAL_DEDUP):
            _reports, traces = run_traced(5, strategy)
            for trace in traces:
                assert trace.counters("reduction").sent_bytes == 0
        _reports, traces = run_traced(5, Strategy.COLL_DEDUP)
        assert any(t.counters("reduction").sent_bytes > 0 for t in traces)

    def test_exchange_put_bytes_cover_wire_records(self):
        """Every sent chunk occupies one wire slot, so the traced put bytes
        must equal sent_chunks x slot size; the batched hot path ships each
        partner's region with a single put (one message per non-empty
        partner), while the chunk counter still tracks per-chunk volume."""
        from repro.core.wire import slot_nbytes

        n = 6
        reports, traces = run_traced(n, Strategy.COLL_DEDUP)
        slot = slot_nbytes(20, CS)
        for report, trace in zip(reports, traces):
            exchange = trace.counters("exchange")
            assert exchange.put_msgs == sum(
                1 for c in report.sent_per_partner if c
            )
            assert exchange.put_bytes == report.sent_chunks * slot
            assert exchange.chunks == report.sent_chunks
            assert exchange.chunk_bytes == report.sent_bytes

    def test_allgather_phase_small(self):
        """The Load allgather must stay tiny relative to the exchange —
        the premise of the single-sided planning design."""
        n = 6
        reports, traces = run_traced(n, Strategy.NO_DEDUP)
        for report, trace in zip(reports, traces):
            allgather = trace.counters("allgather").sent_bytes
            exchange = trace.counters("exchange").sent_bytes
            if exchange:
                assert allgather < exchange / 10

    def test_hash_phase_moves_no_bytes(self):
        _reports, traces = run_traced(4, Strategy.COLL_DEDUP)
        for trace in traces:
            assert trace.counters("hash").sent_bytes == 0
            assert trace.counters("hash").recv_bytes == 0

    def test_total_sent_equals_total_received(self):
        for strategy in Strategy:
            _reports, traces = run_traced(6, strategy)
            sent = sum(t.sent_bytes for t in traces)
            recv = sum(t.recv_bytes for t in traces)
            assert sent == recv
