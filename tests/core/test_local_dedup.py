"""Phase-1 local deduplication."""

from hypothesis import given, strategies as st

from repro.core.chunking import Dataset
from repro.core.fingerprint import Fingerprinter
from repro.core.local_dedup import LocalIndex, index_from_fingerprints, local_dedup


def _index(data_segments, chunk_size=4, keep=True):
    return local_dedup(
        Dataset(data_segments), Fingerprinter("sha1"), chunk_size, keep_payloads=keep
    )


class TestLocalDedup:
    def test_duplicates_collapsed(self):
        idx = _index([b"aaaabbbbaaaa"])  # chunks: aaaa, bbbb, aaaa
        assert idx.total_chunks == 3
        assert idx.unique_chunks == 2
        assert idx.counts[idx.order[0]] == 2
        assert idx.counts[idx.order[1]] == 1

    def test_order_records_every_occurrence(self):
        idx = _index([b"xxxxyyyyxxxx"])
        assert len(idx.order) == 3
        assert idx.order[0] == idx.order[2]

    def test_first_occurrence_payload_kept(self):
        idx = _index([b"aaaabbbb"])
        payloads = list(idx.unique.values())
        assert payloads == [b"aaaa", b"bbbb"]

    def test_bytes_accounting(self):
        idx = _index([b"aaaa" * 3 + b"zz"])  # 3x aaaa + tail zz
        assert idx.total_bytes == 14
        assert idx.unique_bytes == 6  # aaaa + zz

    def test_tail_chunk_size_tracked(self):
        idx = _index([b"aaaaZ"])
        sizes = sorted(idx.chunk_sizes.values())
        assert sizes == [1, 4]

    def test_fingerprints_only_mode(self):
        idx = _index([b"aaaabbbb"], keep=False)
        assert idx.unique == {}
        assert idx.unique_chunks == 2
        assert idx.unique_bytes == 8

    def test_segment_boundaries_respected(self):
        # 'aaaa'+'a' vs 'aaaaa' chunk differently
        idx_a = _index([b"aaaa", b"a"])
        idx_b = _index([b"aaaaa"])
        assert idx_a.order == idx_b.order  # same chunks here: aaaa then a
        idx_c = _index([b"aa", b"aaa"])
        assert idx_c.unique_chunks == 2  # 'aa' and 'aaa'

    def test_empty_dataset(self):
        idx = _index([b""])
        assert idx.total_chunks == 0
        assert idx.unique_chunks == 0
        assert idx.total_bytes == 0

    def test_unique_fingerprints_first_occurrence_order(self):
        idx = _index([b"bbbbaaaabbbb"])
        fps = idx.unique_fingerprints()
        assert fps[0] == idx.order[0]
        assert fps[1] == idx.order[1]

    @given(st.lists(st.sampled_from([b"AAAA", b"BBBB", b"CCCC"]), max_size=20))
    def test_counts_match_multiset(self, chunk_seq):
        data = b"".join(chunk_seq)
        idx = _index([data])
        assert idx.total_chunks == len(chunk_seq)
        assert sum(idx.counts.values()) == len(chunk_seq)
        assert idx.unique_chunks == len(set(chunk_seq))


class TestIndexFromFingerprints:
    def test_basic(self):
        fps = [b"f1", b"f2", b"f1"]
        idx = index_from_fingerprints(fps, chunk_size=64)
        assert idx.total_chunks == 3
        assert idx.counts[b"f1"] == 2
        assert idx.chunk_sizes[b"f1"] == 64

    def test_last_chunk_size(self):
        idx = index_from_fingerprints([b"f1", b"f2"], chunk_size=64, last_chunk_size=10)
        assert idx.chunk_sizes[b"f2"] == 10
        assert idx.total_bytes == 74

    def test_empty(self):
        idx = index_from_fingerprints([], chunk_size=64)
        assert idx.total_chunks == 0
