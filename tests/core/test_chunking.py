"""Chunk split/join and Dataset semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.chunking import (
    Dataset,
    as_bytes_view,
    iter_chunks,
    join_chunks,
    num_chunks,
    split_chunks,
)


class TestSplitJoin:
    def test_exact_multiple(self):
        chunks = split_chunks(b"abcdefgh", 4)
        assert chunks == [b"abcd", b"efgh"]

    def test_short_tail(self):
        chunks = split_chunks(b"abcdefghi", 4)
        assert chunks == [b"abcd", b"efgh", b"i"]

    def test_empty(self):
        assert split_chunks(b"", 16) == []

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            split_chunks(b"xx", 0)
        with pytest.raises(ValueError):
            num_chunks(10, 0)

    def test_iter_matches_split(self):
        data = bytes(range(256)) * 3
        assert list(iter_chunks(data, 100)) == split_chunks(data, 100)

    def test_ndarray_input(self):
        arr = np.arange(32, dtype=np.int32)
        chunks = split_chunks(arr, 64)
        assert join_chunks(chunks) == arr.tobytes()

    def test_non_contiguous_ndarray(self):
        arr = np.arange(100, dtype=np.float64)[::2]
        assert join_chunks(split_chunks(arr, 32)) == np.ascontiguousarray(arr).tobytes()

    @given(st.binary(max_size=2000), st.integers(1, 300))
    def test_split_join_identity(self, data, chunk_size):
        chunks = split_chunks(data, chunk_size)
        assert join_chunks(chunks) == data
        assert len(chunks) == num_chunks(len(data), chunk_size)
        if chunks:
            assert all(len(c) == chunk_size for c in chunks[:-1])
            assert 1 <= len(chunks[-1]) <= chunk_size


class TestNumChunks:
    @pytest.mark.parametrize(
        "nbytes,chunk,expected",
        [(0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (4096, 4096, 1)],
    )
    def test_values(self, nbytes, chunk, expected):
        assert num_chunks(nbytes, chunk) == expected


class TestDataset:
    def test_segments_preserved(self):
        ds = Dataset([b"aaaa", b"bb", b"cccccc"])
        assert ds.segment_lengths == [4, 2, 6]
        assert ds.nbytes == 12
        assert ds.num_segments == 3
        assert ds.to_bytes() == b"aaaabbcccccc"

    def test_from_buffer(self):
        ds = Dataset.from_buffer(b"hello")
        assert ds.num_segments == 1
        assert ds.to_bytes() == b"hello"

    def test_chunks_respect_segment_boundaries(self):
        """No chunk straddles two segments (page-aligned capture model)."""
        ds = Dataset([b"aaaaa", b"bbb"])
        chunks = list(ds.chunks(4))
        assert chunks == [b"aaaa", b"a", b"bbb"]

    def test_chunk_count(self):
        ds = Dataset([b"aaaaa", b"bbb", b""])
        assert ds.chunk_count(4) == 3
        assert ds.chunk_count(1) == 8

    def test_equality(self):
        assert Dataset([b"ab", b"cd"]) == Dataset([b"ab", b"cd"])
        assert Dataset([b"ab", b"cd"]) != Dataset([b"abcd"])  # structure matters
        assert Dataset([b"ab"]) != Dataset([b"ba"])

    def test_equality_with_non_dataset(self):
        assert Dataset([b"x"]).__eq__(42) is NotImplemented

    def test_ndarray_segments(self):
        a = np.ones(10)
        b = np.zeros(5, dtype=np.int32)
        ds = Dataset([a, b])
        assert ds.nbytes == 80 + 20
        assert ds.to_bytes() == a.tobytes() + b.tobytes()

    @given(
        st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=5),
        st.integers(1, 64),
    )
    def test_chunks_reassemble_per_segment(self, segments, chunk_size):
        ds = Dataset(segments)
        rebuilt = join_chunks(ds.chunks(chunk_size))
        assert rebuilt == b"".join(segments)


class TestAsBytesView:
    def test_zero_copy_for_bytes(self):
        data = b"abc"
        view = as_bytes_view(data)
        assert view.obj is data

    def test_memoryview_cast(self):
        arr = np.arange(4, dtype=np.int64)
        view = as_bytes_view(memoryview(arr))
        assert len(view) == 32
