"""HMERGE: frequency union, top-F cap, load-balanced rank truncation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hmerge import GlobalView, MergeEntry, MergeTable, hmerge


def table_of(rank, fps, k=3, f=100):
    return MergeTable.from_local(fps, rank, k, f)


def fp(i):
    return bytes([i]) * 20


class TestFromLocal:
    def test_initial_entries(self):
        t = table_of(5, [fp(1), fp(2)])
        assert len(t) == 2
        assert t.entries[fp(1)] == MergeEntry(freq=1, ranks=(5,))
        assert t.rank_load == {5: 2}

    def test_duplicate_inputs_collapsed(self):
        t = table_of(0, [fp(1), fp(1), fp(2)])
        assert len(t) == 2

    def test_f_cap_applied_at_leaf(self):
        t = table_of(0, [fp(i) for i in range(10)], f=4)
        assert len(t) == 4
        assert t.rank_load == {0: 4}
        # deterministic selection: smallest fingerprints survive
        assert set(t.entries) == {fp(0), fp(1), fp(2), fp(3)}

    def test_empty(self):
        t = table_of(0, [])
        assert len(t) == 0
        assert t.rank_load == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            MergeTable(k=0, f=1)
        with pytest.raises(ValueError):
            MergeTable(k=1, f=0)


class TestHMerge:
    def test_disjoint_union(self):
        out = hmerge(table_of(0, [fp(1)]), table_of(1, [fp(2)]))
        assert len(out) == 2
        assert out.entries[fp(1)].ranks == (0,)
        assert out.entries[fp(2)].ranks == (1,)
        assert out.rank_load == {0: 1, 1: 1}
        out.check_invariants()

    def test_frequency_sums(self):
        out = hmerge(table_of(0, [fp(1)]), table_of(1, [fp(1)]))
        assert out.entries[fp(1)].freq == 2
        assert out.entries[fp(1)].ranks == (0, 1)

    def test_mismatched_bounds_raise(self):
        with pytest.raises(ValueError):
            hmerge(table_of(0, [fp(1)], k=2), table_of(1, [fp(1)], k=3))

    def test_rank_list_capped_at_k(self):
        k = 2
        acc = table_of(0, [fp(1)], k=k)
        for rank in range(1, 6):
            acc = hmerge(acc, table_of(rank, [fp(1)], k=k))
        assert acc.entries[fp(1)].freq == 6
        assert len(acc.entries[fp(1)].ranks) == k
        acc.check_invariants()

    def test_truncation_drops_most_loaded_rank(self):
        """Rank 0 is designated for two other fingerprints; when fp(9)'s
        rank list overflows K=2, rank 0 must be the one evicted."""
        k = 2
        heavy = table_of(0, [fp(1), fp(2), fp(9)], k=k)
        light_a = table_of(1, [fp(9)], k=k)
        light_b = table_of(2, [fp(9)], k=k)
        out = hmerge(hmerge(heavy, light_a), light_b)
        ranks = out.entries[fp(9)].ranks
        assert len(ranks) == 2
        assert 0 not in ranks  # most loaded evicted first
        out.check_invariants()

    def test_top_f_keeps_most_frequent(self):
        f = 2
        a = table_of(0, [fp(1), fp(2), fp(3)], f=f)  # leaf cap keeps 1,2
        b = table_of(1, [fp(2), fp(3), fp(4)], f=f)  # leaf cap keeps 2,3
        out = hmerge(a, b)
        assert len(out) == f
        assert fp(2) in out  # freq 2 must survive
        out.check_invariants()

    def test_dropped_entries_release_load(self):
        f = 1
        a = table_of(0, [fp(1)], f=f)
        b = table_of(1, [fp(2)], f=f)
        out = hmerge(a, b)
        assert len(out) == 1
        # the surviving entry's rank keeps load 1; the other rank is gone
        surviving_rank = next(iter(out.entries.values())).ranks[0]
        assert out.rank_load == {surviving_rank: 1}
        out.check_invariants()

    def test_symmetry_simple(self):
        a = table_of(0, [fp(1), fp(2)])
        b = table_of(1, [fp(2), fp(3)])
        ab, ba = hmerge(a, b), hmerge(b, a)
        assert ab.entries == ba.entries
        assert ab.rank_load == ba.rank_load

    def test_purity_inputs_untouched(self):
        a = table_of(0, [fp(1)])
        b = table_of(1, [fp(1)])
        before_a = dict(a.entries)
        hmerge(a, b)
        assert a.entries == before_a
        assert a.rank_load == {0: 1}

    def test_overlapping_rank_lists_no_double_count(self):
        """Merging tables that share a designated rank (not possible in a
        reduction, but legal via the public API) must not inflate loads."""
        a = table_of(0, [fp(1)])
        b = table_of(0, [fp(1)])
        out = hmerge(a, b)
        assert out.entries[fp(1)].ranks == (0,)
        assert out.rank_load == {0: 1}
        out.check_invariants()

    def test_ranks_kept_sorted(self):
        out = hmerge(table_of(7, [fp(1)]), table_of(2, [fp(1)]))
        assert out.entries[fp(1)].ranks == (2, 7)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),  # rank
                st.lists(st.integers(0, 12), min_size=0, max_size=8),  # fp ids
            ),
            min_size=2,
            max_size=6,
            unique_by=lambda t: t[0],
        ),
        st.integers(1, 4),  # k
        st.integers(1, 20),  # f
    )
    def test_symmetry_property(self, rank_fps, k, f):
        tables = [table_of(rank, [fp(i) for i in ids], k=k, f=f) for rank, ids in rank_fps]
        a, b = tables[0], tables[1]
        ab, ba = hmerge(a, b), hmerge(b, a)
        assert ab.entries == ba.entries
        assert ab.rank_load == ba.rank_load
        ab.check_invariants()

    @given(
        st.lists(st.lists(st.integers(0, 30), max_size=10), min_size=1, max_size=8),
        st.integers(1, 4),
        st.integers(1, 8),
    )
    def test_fold_invariants(self, per_rank_ids, k, f):
        """Left-folding any number of tables preserves all invariants and
        never exceeds the F/K caps."""
        acc = table_of(0, [fp(i) for i in per_rank_ids[0]], k=k, f=f)
        for rank, ids in enumerate(per_rank_ids[1:], start=1):
            acc = hmerge(acc, table_of(rank, [fp(i) for i in ids], k=k, f=f))
        acc.check_invariants()
        for entry in acc.entries.values():
            assert entry.freq <= len(per_rank_ids)


class TestMergeEntryAndView:
    def test_entry_sorts_ranks(self):
        assert MergeEntry(freq=1, ranks=(3, 1, 2)).ranks == (1, 2, 3)

    def test_entry_rejects_zero_freq(self):
        with pytest.raises(ValueError):
            MergeEntry(freq=0, ranks=(0,))

    def test_view_from_table(self):
        t = hmerge(table_of(0, [fp(1)]), table_of(1, [fp(1)]))
        view = GlobalView.from_table(t)
        assert fp(1) in view
        assert view.designated(fp(1)) == (0, 1)
        assert view.designated(fp(9)) == ()
        assert len(view) == 1

    def test_nbytes_estimates_positive(self):
        t = table_of(0, [fp(1), fp(2)])
        assert t.nbytes_estimate() > 0
        assert GlobalView.from_table(t).nbytes_estimate() > 0


class TestVectorizedEntries:
    """The bulk-extraction `entries` path against a per-entry reference."""

    @staticmethod
    def reference_entries(table):
        import numpy as np

        from repro.core.hmerge import PAD

        width = table.digest_size
        out = {}
        for i in range(len(table.fps)):
            row = table.ranks[i]
            ranks = tuple(int(r) for r in row[row != PAD])
            key = bytes(table.fps[i]).ljust(width, b"\x00")
            out[key] = MergeEntry(freq=int(table.freq[i]), ranks=ranks)
        return out

    def test_matches_reference_after_merges(self):
        acc = table_of(0, [fp(i) for i in range(20)], k=3, f=15)
        for rank in range(1, 6):
            acc = hmerge(
                acc, table_of(rank, [fp(i) for i in range(rank, rank + 20)], k=3, f=15)
            )
        fast = acc.entries
        assert fast == self.reference_entries(acc)
        assert all(isinstance(k, bytes) and len(k) == 20 for k in fast)
        assert all(
            isinstance(r, int) and not hasattr(r, "dtype")
            for e in fast.values()
            for r in e.ranks
        ), "ranks must be Python ints, not numpy scalars"

    def test_trailing_nul_fingerprints_keep_width(self):
        # numpy S-dtype strips trailing NULs on element readback; the bulk
        # path must restore the fixed digest width.
        fps = [b"\x01" * 19 + b"\x00", b"\x00" * 20, fp(3)]
        t = table_of(0, fps)
        assert set(t.entries) == set(fps)
        assert t.entries == self.reference_entries(t)

    def test_trusted_skips_validation_but_agrees(self):
        assert MergeEntry._trusted(2, (1, 5)) == MergeEntry(freq=2, ranks=(1, 5))

    @given(
        st.lists(st.lists(st.integers(0, 30), max_size=10), min_size=1, max_size=6),
        st.integers(1, 4),
        st.integers(1, 12),
    )
    def test_matches_reference_property(self, per_rank_ids, k, f):
        acc = table_of(0, [fp(i) for i in per_rank_ids[0]], k=k, f=f)
        for rank, ids in enumerate(per_rank_ids[1:], start=1):
            acc = hmerge(acc, table_of(rank, [fp(i) for i in ids], k=k, f=f))
        assert acc.entries == self.reference_entries(acc)

    def test_global_view_wire_nbytes_matches_per_entry_sum(self):
        t = hmerge(
            table_of(0, [fp(i) for i in range(12)], k=3, f=10),
            table_of(1, [fp(i) for i in range(6, 18)], k=3, f=10),
        )
        view = GlobalView.from_table(t)
        uncached = GlobalView(entries=view.entries, k=view.k)
        assert view.wire_nbytes is not None
        assert view.nbytes_estimate() == uncached.nbytes_estimate()

    def test_no_regression_vs_reference(self):
        """The bulk path must not be slower than the per-entry loop.

        Generous 1.5x headroom: this guards against reintroducing per-entry
        numpy indexing, not against scheduler noise.
        """
        import time

        import numpy as np

        rng = np.random.default_rng(7)
        fps = [bytes(rng.integers(0, 256, 20, dtype=np.uint8)) for _ in range(8000)]
        t = MergeTable.from_local(fps, rank=0, k=4, f=1 << 17)
        t.entries  # warm both paths' imports/caches
        self.reference_entries(t)

        best_fast = min(
            (lambda s: (t.entries, time.perf_counter() - s))(time.perf_counter())[1]
            for _ in range(3)
        )
        best_ref = min(
            (lambda s: (self.reference_entries(t), time.perf_counter() - s))(
                time.perf_counter()
            )[1]
            for _ in range(3)
        )
        assert best_fast <= best_ref * 1.5, (best_fast, best_ref)
