"""DumpConfig / Strategy validation."""

import pytest

from repro.core.config import DumpConfig, Strategy


class TestStrategy:
    def test_parse_value(self):
        assert Strategy.parse("coll-dedup") is Strategy.COLL_DEDUP
        assert Strategy.parse("no-dedup") is Strategy.NO_DEDUP
        assert Strategy.parse("local-dedup") is Strategy.LOCAL_DEDUP

    def test_parse_name(self):
        assert Strategy.parse("NO_DEDUP") is Strategy.NO_DEDUP

    def test_parse_passthrough(self):
        assert Strategy.parse(Strategy.COLL_DEDUP) is Strategy.COLL_DEDUP

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            Strategy.parse("super-dedup")


class TestDumpConfig:
    def test_defaults_match_paper(self):
        cfg = DumpConfig()
        assert cfg.replication_factor == 3
        assert cfg.chunk_size == 4096
        assert cfg.f_threshold == 1 << 17
        assert cfg.hash_name == "sha1"
        assert cfg.strategy is Strategy.COLL_DEDUP
        assert cfg.shuffle is True

    def test_string_strategy_coerced(self):
        assert DumpConfig(strategy="no-dedup").strategy is Strategy.NO_DEDUP

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replication_factor": 0},
            {"chunk_size": 0},
            {"f_threshold": 0},
            {"replication_factor": -3},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            DumpConfig(**kwargs)

    def test_with_creates_modified_copy(self):
        base = DumpConfig(replication_factor=3)
        other = base.with_(replication_factor=5, shuffle=False)
        assert other.replication_factor == 5
        assert other.shuffle is False
        assert base.replication_factor == 3

    def test_effective_k_caps_at_world(self):
        cfg = DumpConfig(replication_factor=6)
        assert cfg.effective_k(4) == 4
        assert cfg.effective_k(100) == 6

    def test_frozen(self):
        with pytest.raises(Exception):
            DumpConfig().replication_factor = 9
