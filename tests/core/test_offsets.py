"""Algorithm 3: window layout (sizes, offsets, exact packing)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.offsets import window_layout
from repro.core.shuffle import identity_shuffle, rank_shuffle


def uniform_load(n, k, per_partner):
    return [[0] + [per_partner] * (k - 1) for _ in range(n)]


class TestWindowLayout:
    def test_uniform_loads(self):
        n, k = 4, 3
        layout = window_layout(identity_shuffle(n), uniform_load(n, k, 5), k)
        assert all(layout.window_slots[r] == 10 for r in range(n))
        layout.check_invariants()

    def test_paper_offset_convention(self):
        """Rank i's region in partner i+1's window starts at 0; in partner
        i+2's it starts after the send of i+1 to i+2 (distance-1 sender)."""
        n, k = 5, 3
        load = [[0, 10 * (r + 1), 100 * (r + 1)] for r in range(n)]
        layout = window_layout(identity_shuffle(n), load, k)
        # target 2: distance-1 sender is rank 1 (slot j=1 -> 20 chunks),
        # distance-2 sender is rank 0 (slot j=2 -> 100 chunks).
        assert layout.offset_of(1, 2) == 0
        assert layout.offset_of(0, 2) == 20
        assert layout.window_slots[2] == 120
        layout.check_invariants()

    def test_regions_ordered_by_distance(self):
        n, k = 4, 3
        layout = window_layout(identity_shuffle(n), uniform_load(n, k, 1), k)
        senders = [s for s, _st, _c in layout.regions[0]]
        assert senders == [3, 2]  # distance 1 then distance 2

    def test_zero_loads(self):
        n, k = 3, 3
        layout = window_layout(identity_shuffle(n), uniform_load(n, k, 0), k)
        assert all(s == 0 for s in layout.window_slots.values())
        layout.check_invariants()

    def test_k_exceeding_world_caps_senders(self):
        n, k = 3, 6
        load = [[0, 1, 1, 0, 0, 0] for _ in range(n)]
        layout = window_layout(identity_shuffle(n), load, k)
        assert all(len(layout.regions[r]) == n - 1 for r in range(n))
        layout.check_invariants()

    def test_k1_empty_windows(self):
        layout = window_layout(identity_shuffle(4), [[7]] * 4, 1)
        assert all(s == 0 for s in layout.window_slots.values())
        assert layout.regions[0] == []

    def test_short_rows_treated_as_zero(self):
        layout = window_layout(identity_shuffle(2), [[3], [3]], 2)
        assert layout.window_slots == {0: 0, 1: 0}

    def test_row_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            window_layout(identity_shuffle(3), [[0, 1]] * 2, 2)

    def test_respects_shuffle_order(self):
        n, k = 4, 2
        shuffle = [2, 0, 3, 1]
        load = [[0, r + 1] for r in range(n)]
        layout = window_layout(shuffle, load, k)
        # partner of shuffled position 0 (rank 2) is position 1 (rank 0):
        assert layout.offset_of(2, 0) == 0
        assert layout.window_slots[0] == 3  # rank 2 sends 3 to its partner

    @given(
        st.integers(2, 12),
        st.integers(2, 6),
        st.data(),
    )
    def test_exact_packing_property(self, n, k, data):
        """Every window is tiled exactly by its sender regions, and the sum
        of window sizes equals the sum of send loads (chunk conservation)."""
        loads = [
            [0] + [data.draw(st.integers(0, 50)) for _ in range(k - 1)]
            for _ in range(n)
        ]
        totals = [sum(row[1:]) for row in loads]
        shuffle = rank_shuffle(totals, k)
        layout = window_layout(shuffle, loads, k)
        layout.check_invariants()
        sendable_slots = min(k, n) - 1
        expected_total = sum(sum(row[1 : sendable_slots + 1]) for row in loads)
        assert sum(layout.window_slots.values()) == expected_total
