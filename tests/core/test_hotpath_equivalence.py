"""Equivalence of the batched hot path with the legacy per-chunk path.

The batched pipeline (zero-copy batch fingerprinting, array-backed local
dedup, packed per-partner exchange) and the cross-dump fingerprint cache
are pure performance work: every observable — wire bytes, DumpReport
accounting, stored state, restored datasets — must be identical to the
seed per-chunk implementation.  These tests pin that, property-style where
the input space matters.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.core.chunking import Dataset
from repro.core.fingerprint import Fingerprinter
from repro.core.fpcache import FingerprintCache
from repro.core.local_dedup import local_dedup, local_dedup_batched
from repro.core.wire import (
    decode_region,
    decode_region_batch,
    encode_record,
    encode_records_into,
    slot_nbytes,
)
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

DIGEST = 20
CHUNK = 32
CS = 64


def fp_of(i: int) -> bytes:
    return bytes([i % 256]) * DIGEST


# -- wire codec ---------------------------------------------------------------

records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255).map(fp_of),
        st.binary(min_size=0, max_size=CHUNK),
    ),
    min_size=0,
    max_size=12,
)


class TestWireCodecEquivalence:
    @given(records=records_strategy)
    def test_batched_encode_matches_legacy_bytes(self, records):
        legacy = b"".join(encode_record(fp, c, CHUNK) for fp, c in records)
        buf = bytearray(len(records) * slot_nbytes(DIGEST, CHUNK))
        packed = encode_records_into(buf, records, DIGEST, CHUNK)
        assert packed == len(records)
        assert bytes(buf) == legacy

    @given(records=records_strategy, data=st.data())
    def test_batched_decode_matches_legacy(self, records, data):
        window = b"".join(encode_record(fp, c, CHUNK) for fp, c in records)
        start = data.draw(
            st.integers(min_value=0, max_value=len(records)), label="start"
        )
        count = data.draw(
            st.integers(min_value=0, max_value=len(records) - start),
            label="count",
        )
        assert decode_region_batch(
            window, DIGEST, CHUNK, start, count
        ) == decode_region(window, DIGEST, CHUNK, start, count)

    @given(records=records_strategy)
    def test_round_trip_through_reused_buffer(self, records):
        # A dirty, reused buffer must not leak stale bytes into the region.
        buf = bytearray(b"\xaa" * (max(len(records), 1) * slot_nbytes(DIGEST, CHUNK)))
        encode_records_into(buf, records, DIGEST, CHUNK)
        decoded = decode_region_batch(bytes(buf), DIGEST, CHUNK, 0, len(records))
        assert decoded == records

    def test_batched_decode_rejects_truncated_window(self):
        window = encode_record(fp_of(1), b"a", CHUNK)
        try:
            decode_region_batch(window[:-1], DIGEST, CHUNK, 0, 1)
        except ValueError as exc:
            assert "truncated" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("truncated window accepted")

    def test_batched_decode_rejects_corrupt_length(self):
        record = bytearray(encode_record(fp_of(1), b"a", CHUNK))
        record[DIGEST] = 0xFF  # length field now > CHUNK
        try:
            decode_region_batch(bytes(record), DIGEST, CHUNK, 0, 1)
        except ValueError as exc:
            assert "corrupt" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("corrupt record accepted")


# -- local dedup --------------------------------------------------------------

segments_strategy = st.lists(
    st.binary(min_size=0, max_size=5 * CHUNK), min_size=0, max_size=4
)


class TestLocalDedupEquivalence:
    @given(segments=segments_strategy)
    def test_batched_index_identical_to_legacy(self, segments):
        ds = Dataset(segments)
        legacy = local_dedup(ds, Fingerprinter(), CHUNK)
        f2 = Fingerprinter()
        batched = local_dedup_batched(ds, f2, CHUNK)
        assert batched.order == legacy.order
        # Dict *iteration order* is part of the contract (plans and wire
        # order derive from first-occurrence order).
        assert list(batched.counts.items()) == list(legacy.counts.items())
        assert list(batched.unique.items()) == list(legacy.unique.items())
        assert list(batched.chunk_sizes.items()) == list(
            legacy.chunk_sizes.items()
        )
        assert f2.hashed_bytes == ds.nbytes

    @given(segments=segments_strategy)
    def test_warm_cache_index_identical_to_cold(self, segments):
        ds = Dataset(segments)
        cache = FingerprintCache(CHUNK)
        cold = local_dedup_batched(ds, Fingerprinter(), CHUNK, cache=cache)
        all_clean = [[] for _ in segments]
        fpr = Fingerprinter()
        warm = local_dedup_batched(
            ds, fpr, CHUNK, cache=cache, dirty_regions=all_clean
        )
        assert warm.order == cold.order
        assert list(warm.unique.items()) == list(cold.unique.items())
        assert fpr.hashed_bytes == 0


# -- full dump ----------------------------------------------------------------

def run_dump(n, batched, datasets, caches=None, dirty=None, k=3, dump_id=0,
             cluster=None, strategy=Strategy.COLL_DEDUP):
    cfg = DumpConfig(
        replication_factor=k, chunk_size=CS, strategy=strategy,
        f_threshold=4096, batched=batched,
    )
    cluster = cluster or Cluster(n)
    world = World(n)
    reports = world.run(
        lambda comm: dump_output(
            comm,
            datasets[comm.rank],
            cfg,
            cluster,
            dump_id,
            fpcache=caches[comm.rank] if caches else None,
            dirty_regions=dirty[comm.rank] if dirty else None,
        )
    )
    return reports, cluster


def report_key(report):
    """Every accounting field of a DumpReport except the hash-work fields
    the cache is *supposed* to change (hashed_bytes, cache stats)."""
    d = dict(vars(report))
    d.pop("cache_hits")
    d.pop("cache_bytes_skipped")
    d.pop("hashed_bytes")
    return d


class TestDumpEquivalence:
    def test_batched_dump_matches_legacy_everywhere(self):
        n = 6
        datasets = [make_rank_dataset(r, chunk_size=CS) for r in range(n)]
        for strategy in Strategy:
            legacy_reports, legacy_cluster = run_dump(
                n, False, datasets, strategy=strategy,
            )
            batched_reports, batched_cluster = run_dump(
                n, True, datasets, strategy=strategy,
            )
            for lr, br in zip(legacy_reports, batched_reports):
                assert report_key(lr) == report_key(br)
            for rank in range(n):
                legacy_restored, _ = restore_dataset(legacy_cluster, rank)
                batched_restored, _ = restore_dataset(batched_cluster, rank)
                assert batched_restored == legacy_restored
                assert batched_restored == datasets[rank]

    def test_warm_cached_dump_identical_to_cold(self):
        n = 5
        base = [
            bytearray(np.random.RandomState(100 + r).bytes(CS * 12))
            for r in range(n)
        ]
        shared = b"S" * (CS * 4)
        datasets = [Dataset([shared, base[r]]) for r in range(n)]
        caches = [FingerprintCache(CS) for _ in range(n)]

        run_dump(n, True, datasets, caches=caches, dump_id=0)

        # Iterate: mutate one chunk of each rank's unique segment.
        for r in range(n):
            base[r][3 * CS] ^= 0xFF
        dirty = [[[], [(3 * CS, 3 * CS + 1)]] for _ in range(n)]

        warm_reports, warm_cluster = run_dump(
            n, True, datasets, caches=caches, dirty=dirty, dump_id=1
        )
        cold_reports, cold_cluster = run_dump(n, True, datasets, dump_id=1)

        for wr, cr in zip(warm_reports, cold_reports):
            assert report_key(wr) == report_key(cr)
            assert wr.cache_hits == 15  # 16 chunks per rank, 1 dirty
            assert wr.cache_bytes_skipped == 15 * CS
            assert wr.hashed_bytes == CS  # only the dirty chunk was hashed
        for rank in range(n):
            warm_restored, _ = restore_dataset(warm_cluster, rank, 1)
            cold_restored, _ = restore_dataset(cold_cluster, rank, 1)
            assert warm_restored == cold_restored
            assert warm_restored == datasets[rank]

    def test_lying_free_fallback_when_no_dirty_info(self):
        """No dirty_regions hook: the cache must rehash everything and the
        dump must still be byte-identical to an uncached one."""
        n = 4
        datasets = [make_rank_dataset(r, chunk_size=CS) for r in range(n)]
        caches = [FingerprintCache(CS) for _ in range(n)]
        run_dump(n, True, datasets, caches=caches, dump_id=0)
        cached_reports, cached_cluster = run_dump(
            n, True, datasets, caches=caches, dump_id=1
        )
        plain_reports, _ = run_dump(n, True, datasets, dump_id=1)
        for cr, pr in zip(cached_reports, plain_reports):
            assert cr.cache_hits == 0
            assert report_key(cr) == report_key(pr)
        for rank in range(n):
            restored, _ = restore_dataset(cached_cluster, rank, 1)
            assert restored == datasets[rank]
