"""Restore: the end-to-end correctness property of every strategy."""

import pytest

from repro.core import Dataset, DumpConfig, Strategy, dump_output, restore_dataset
from repro.core.restore import verify_restorable
from repro.simmpi import World
from repro.storage import Cluster
from repro.storage.local_store import StorageError

from tests.conftest import make_rank_dataset

CS = 64


def dump_world(n, strategy, k=3, dump_id=0, cluster=None):
    cfg = DumpConfig(
        replication_factor=k, chunk_size=CS, strategy=strategy, f_threshold=4096
    )
    if cluster is None:
        cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
    World(n).run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster, dump_id)
    )
    return cluster


class TestRoundtrip:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_every_rank_restores_exactly(self, strategy):
        n = 6
        cluster = dump_world(n, strategy)
        for rank in range(n):
            restored, report = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)
            assert report.total_bytes == make_rank_dataset(rank).nbytes

    def test_segment_structure_preserved(self):
        cluster = dump_world(4, Strategy.COLL_DEDUP)
        restored, _ = restore_dataset(cluster, 2)
        assert restored.segment_lengths == make_rank_dataset(2).segment_lengths

    def test_restore_uses_local_node_when_alive(self):
        cluster = dump_world(4, Strategy.LOCAL_DEDUP)
        _restored, report = restore_dataset(cluster, 1)
        assert report.remote_chunks == 0

    def test_coll_dedup_restores_discarded_chunks_remotely(self):
        """A rank that discarded a chunk (others designated) must fetch it
        from a replica holder."""
        n = 6
        cluster = dump_world(n, Strategy.COLL_DEDUP, k=2)
        remote_total = 0
        for rank in range(n):
            restored, report = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)
            remote_total += report.remote_chunks
        assert remote_total > 0  # the shared chunk was discarded somewhere


class TestFailureRecovery:
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("k", [2, 3])
    def test_survives_k_minus_1_failures(self, strategy, k):
        n = 7
        cluster = dump_world(n, strategy, k=k)
        for victim in range(k - 1):
            cluster.fail_node(victim)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)

    def test_k1_does_not_survive_failure(self):
        n = 4
        cluster = dump_world(n, Strategy.COLL_DEDUP, k=1)
        cluster.fail_node(2)
        with pytest.raises(StorageError):
            restore_dataset(cluster, 2)

    def test_verify_restorable_reports_reason(self):
        n = 4
        cluster = dump_world(n, Strategy.COLL_DEDUP, k=1)
        assert verify_restorable(cluster, 1) is None
        cluster.fail_node(1)
        reason = verify_restorable(cluster, 1)
        assert reason is not None

    def test_restore_report_names_source_nodes(self):
        n = 5
        cluster = dump_world(n, Strategy.LOCAL_DEDUP, k=3)
        cluster.fail_node(0)
        _restored, report = restore_dataset(cluster, 0)
        assert 0 not in report.source_nodes
        assert report.remote_chunks > 0

    def test_revive_restores_access(self):
        n = 4
        cluster = dump_world(n, Strategy.LOCAL_DEDUP, k=2)
        cluster.fail_node(1)
        cluster.revive_all()
        restored, report = restore_dataset(cluster, 1)
        assert restored == make_rank_dataset(1)
        assert report.remote_chunks == 0


class TestMultipleDumps:
    def test_latest_and_older_checkpoints_both_restorable(self):
        n = 4
        cluster = Cluster(n)
        dump_world(n, Strategy.COLL_DEDUP, dump_id=0, cluster=cluster)
        dump_world(n, Strategy.COLL_DEDUP, dump_id=1, cluster=cluster)
        for dump_id in (0, 1):
            restored, _ = restore_dataset(cluster, 3, dump_id=dump_id)
            assert restored == make_rank_dataset(3)

    def test_missing_dump_id_raises(self):
        cluster = dump_world(3, Strategy.COLL_DEDUP, dump_id=0)
        with pytest.raises(StorageError, match="manifest"):
            restore_dataset(cluster, 0, dump_id=5)


class TestRemoteSourceSelection:
    def test_remote_reads_spread_across_holders(self):
        """With the rank's own node dead, every chunk is remote; reads must
        alternate over the surviving holders instead of hammering the
        lowest-numbered one."""
        n = 6
        cluster = dump_world(n, Strategy.NO_DEDUP, k=3)
        cluster.fail_node(1)
        _restored, report = restore_dataset(cluster, 1)
        assert report.local_chunks == 0
        served = report.source_nodes
        assert len(served) >= 2  # reads spread over surviving holders
        assert max(served.values()) < sum(served.values())
