"""Fingerprint functions and accounting."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import Fingerprinter, supported_hashes


class TestFingerprinter:
    def test_sha1_matches_hashlib(self):
        fp = Fingerprinter("sha1")
        assert fp(b"hello") == hashlib.sha1(b"hello").digest()
        assert fp.digest_size == 20

    @pytest.mark.parametrize(
        "name,size", [("sha1", 20), ("sha256", 32), ("md5", 16), ("blake2b", 16)]
    )
    def test_digest_sizes(self, name, size):
        fp = Fingerprinter(name)
        assert fp.digest_size == size
        assert len(fp(b"x")) == size

    def test_unknown_hash_raises(self):
        with pytest.raises(ValueError, match="unknown hash"):
            Fingerprinter("crc32")

    def test_supported_hashes_lists_all(self):
        assert set(supported_hashes()) == {"sha1", "sha256", "md5", "blake2b"}

    def test_hashed_bytes_counter(self):
        fp = Fingerprinter("sha1")
        fp(b"abcd")
        fp(b"efg")
        assert fp.hashed_bytes == 7
        fp.reset_counter()
        assert fp.hashed_bytes == 0

    def test_fingerprint_all_preserves_order(self):
        fp = Fingerprinter("md5")
        chunks = [b"a", b"b", b"a"]
        fps = fp.fingerprint_all(chunks)
        assert fps[0] == fps[2] != fps[1]

    def test_iter_fingerprints_pairs(self):
        fp = Fingerprinter("sha1")
        pairs = list(fp.iter_fingerprints([b"x", b"y"]))
        assert [c for _f, c in pairs] == [b"x", b"y"]
        assert pairs[0][0] == hashlib.sha1(b"x").digest()

    @given(st.binary(max_size=512), st.binary(max_size=512))
    def test_determinism_and_discrimination(self, a, b):
        fp = Fingerprinter("blake2b")
        assert fp(a) == fp(a)
        if a != b:
            assert fp(a) != fp(b)  # no collisions in practice
