"""Fingerprint functions and accounting."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import Fingerprinter, supported_hashes


class TestFingerprinter:
    def test_sha1_matches_hashlib(self):
        fp = Fingerprinter("sha1")
        assert fp(b"hello") == hashlib.sha1(b"hello").digest()
        assert fp.digest_size == 20

    @pytest.mark.parametrize(
        "name,size", [("sha1", 20), ("sha256", 32), ("md5", 16), ("blake2b", 16)]
    )
    def test_digest_sizes(self, name, size):
        fp = Fingerprinter(name)
        assert fp.digest_size == size
        assert len(fp(b"x")) == size

    def test_unknown_hash_raises(self):
        with pytest.raises(ValueError, match="unknown hash"):
            Fingerprinter("crc32")

    def test_supported_hashes_lists_all(self):
        assert set(supported_hashes()) == {
            "sha1", "sha256", "md5", "blake2b", "xx128",
        }

    def test_hashed_bytes_counter(self):
        fp = Fingerprinter("sha1")
        fp(b"abcd")
        fp(b"efg")
        assert fp.hashed_bytes == 7
        fp.reset_counter()
        assert fp.hashed_bytes == 0

    def test_fingerprint_all_preserves_order(self):
        fp = Fingerprinter("md5")
        chunks = [b"a", b"b", b"a"]
        fps = fp.fingerprint_all(chunks)
        assert fps[0] == fps[2] != fps[1]

    def test_iter_fingerprints_pairs(self):
        fp = Fingerprinter("sha1")
        pairs = list(fp.iter_fingerprints([b"x", b"y"]))
        assert [c for _f, c in pairs] == [b"x", b"y"]
        assert pairs[0][0] == hashlib.sha1(b"x").digest()

    @given(st.binary(max_size=512), st.binary(max_size=512))
    def test_determinism_and_discrimination(self, a, b):
        fp = Fingerprinter("blake2b")
        assert fp(a) == fp(a)
        if a != b:
            assert fp(a) != fp(b)  # no collisions in practice


class TestXX128:
    """The vectorised non-cryptographic kernel behind integrity="fast"."""

    def test_digest_size_and_flags(self):
        fp = Fingerprinter("xx128")
        assert fp.digest_size == 16
        assert fp.vectorised
        assert len(fp(b"hello")) == 16
        assert not Fingerprinter("sha1").vectorised

    def test_scalar_and_matrix_kernels_agree(self):
        """fingerprint_segment's whole-matrix pass must produce the exact
        digests of the chunk-at-a-time scalar kernel — the dedup planner
        compares fingerprints across both paths."""
        fp = Fingerprinter("xx128")
        cs = 32
        data = bytes(range(256)) * 5  # 40 chunks
        batched = fp.fingerprint_segment(data, cs)
        scalar = [fp(data[i : i + cs]) for i in range(0, len(data), cs)]
        assert batched == scalar

    def test_tail_chunk(self):
        fp = Fingerprinter("xx128")
        cs = 32
        data = b"x" * (cs * 3 + 7)  # short final chunk
        batched = fp.fingerprint_segment(data, cs)
        assert len(batched) == 4
        assert batched[-1] == fp(data[cs * 3 :])

    def test_fingerprint_views_mixed_lengths(self):
        fp = Fingerprinter("xx128")
        views = [b"a" * 16, b"b" * 32, b"c" * 16, b"", b"d" * 32]
        assert fp.fingerprint_views(views) == [fp(bytes(v)) for v in views]

    def test_position_sensitivity(self):
        """A chunk's digest depends only on its content, not its row in the
        batch matrix; equal chunks at different offsets collide (that is
        what dedup needs) and single-byte edits do not."""
        fp = Fingerprinter("xx128")
        a = b"\x01" * 64
        b_ = b"\x01" * 63 + b"\x02"
        fps = fp.fingerprint_segment(a + b_ + a, 64)
        assert fps[0] == fps[2] != fps[1]

    def test_hashed_bytes_batch_accumulated(self):
        fp = Fingerprinter("xx128")
        fp.fingerprint_segment(b"z" * 128, 32)
        fp.fingerprint_views([b"q" * 32])
        fp(b"pq")
        assert fp.hashed_bytes == 128 + 32 + 2
        fp.reset_counter()
        assert fp.hashed_bytes == 0

    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_determinism_and_discrimination(self, a, b):
        fp = Fingerprinter("xx128")
        assert fp(a) == fp(a)
        if a != b:
            assert fp(a) != fp(b)
