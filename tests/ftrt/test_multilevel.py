"""Multi-level checkpointing: L1 partner replication + L2 PFS flushes."""

import numpy as np
import pytest

from repro.core import DumpConfig
from repro.ftrt import MultiLevelRuntime
from repro.simmpi import World
from repro.storage import Cluster, ParallelFileSystem
from repro.storage.local_store import StorageError


def run_app(n, k, n_steps, interval, pfs_every, disaster=None):
    """SPMD toy app; ``disaster(cluster)`` runs (on rank 0) before restart."""
    cluster = Cluster(n)
    pfs = ParallelFileSystem()
    cfg = DumpConfig(replication_factor=k, chunk_size=64, f_threshold=1024)

    def prog(comm):
        rt = MultiLevelRuntime(comm, cluster, pfs, cfg, interval=interval,
                               pfs_every=pfs_every)
        # rank*1000 offset keeps every (rank, step) state bitwise distinct —
        # otherwise content addressing would find "replicas" of one rank's
        # chunks inside another rank's older checkpoints.
        state = np.full(48, float(comm.rank * 1000))
        rt.memory.register("state", state)
        for step in range(1, n_steps + 1):
            state += 1.0
            rt.maybe_checkpoint(step)
        comm.barrier()
        if disaster is not None:
            if comm.rank == 0:
                disaster(cluster)
            comm.barrier()
            dump_id, level = rt.restart()
            return state.copy(), dump_id, level, rt.stats
        return state.copy(), None, None, rt.stats

    return World(n).run(prog), pfs


class TestCheckpointing:
    def test_l2_flush_cadence(self):
        results, pfs = run_app(n=4, k=2, n_steps=12, interval=2, pfs_every=3)
        for _state, _d, _l, stats in results:
            assert stats.l1_checkpoints == 6  # steps 2,4,...,12
            assert stats.l2_flushes == 2  # dump ids 0 and 3
        assert pfs.latest_complete_dump(4) == 3

    def test_pfs_every_one_flushes_always(self):
        results, pfs = run_app(n=3, k=2, n_steps=4, interval=2, pfs_every=1)
        for _s, _d, _l, stats in results:
            assert stats.l2_flushes == 2
        assert pfs.stats.files_written == 3 * 2

    def test_pfs_bytes_accounted(self):
        results, pfs = run_app(n=2, k=2, n_steps=2, interval=2, pfs_every=1)
        per_rank = 48 * 8
        assert pfs.stats.bytes_written == 2 * per_rank
        for _s, _d, _l, stats in results:
            assert stats.pfs_bytes_written == per_rank

    def test_invalid_pfs_every(self):
        cluster = Cluster(1)
        pfs = ParallelFileSystem()
        cfg = DumpConfig(replication_factor=1, chunk_size=64)

        def prog(comm):
            MultiLevelRuntime(comm, cluster, pfs, cfg, interval=1, pfs_every=0)

        with pytest.raises(Exception):
            World(1).run(prog)


class TestRestartPolicy:
    def test_l1_preferred_when_recoverable(self):
        def tolerable(cluster):
            cluster.fail_node(1)  # K-1 = 1 failure: L1 survives

        results, _pfs = run_app(n=4, k=2, n_steps=8, interval=2, pfs_every=2,
                                disaster=tolerable)
        for rank, (state, dump_id, level, stats) in enumerate(results):
            assert level == "L1"
            assert dump_id == 3  # newest checkpoint (step 8)
            assert np.all(state == rank * 1000 + 8)
            assert stats.l1_restarts == 1

    def test_l2_fallback_when_l1_destroyed(self):
        """More failures than K-1: some rank's L1 data is gone, so the
        group agrees on a PFS-flushed dump id; wounded ranks restore from
        L2, lucky ones still use their local L1 copy of the same id."""

        def catastrophic(cluster):
            # kill a rank together with its replication partner (the
            # load-aware shuffle pairs 0 with 5 here): rank 0's L1 is gone.
            cluster.fail_node(0)
            cluster.fail_node(5)

        results, _pfs = run_app(n=6, k=2, n_steps=8, interval=2, pfs_every=3,
                                disaster=catastrophic)
        # flushed ids: 0 and 3; id 3 is also the newest L1 checkpoint.
        levels = [level for _s, _d, level, _st in results]
        assert "L2" in levels  # at least one rank lost its L1 copies
        for rank, (state, dump_id, level, stats) in enumerate(results):
            assert dump_id == 3  # all ranks agree on one id
            assert np.all(state == rank * 1000 + 8)
            assert stats.l1_restarts + stats.l2_restarts == 1

    def test_l2_rollback_loses_recent_work(self):
        """When a wounded rank can only restore PFS-flushed ids, the whole
        group rolls back past newer L1-only checkpoints (the multi-level
        trade-off) — and state stays globally consistent."""

        def catastrophic(cluster):
            cluster.fail_node(0)
            cluster.fail_node(5)  # rank 0 and its partner

        # interval=2, 10 steps -> dump ids 0..4 at steps 2..10;
        # pfs_every=3 -> flushed ids 0 (step 2) and 3 (step 8).
        results, _pfs = run_app(n=6, k=2, n_steps=10, interval=2, pfs_every=3,
                                disaster=catastrophic)
        ids = {dump_id for _s, dump_id, _l, _st in results}
        assert ids == {3}  # newer id 4 exists on L1 but not for everyone
        for rank, (state, _d, _level, _stats) in enumerate(results):
            assert np.all(state == rank * 1000 + 8)  # steps 9-10 lost

    def test_nothing_recoverable_raises(self):
        def doomsday(cluster):
            for node in range(3):
                cluster.fail_node(node)

        cluster = Cluster(3)
        pfs = ParallelFileSystem()
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = MultiLevelRuntime(comm, cluster, pfs, cfg, interval=100,
                                   pfs_every=1)
            rt.memory.register("x", np.zeros(4))
            # no checkpoint ever taken; kill everything and try to restart
            comm.barrier()
            if comm.rank == 0:
                doomsday(cluster)
            comm.barrier()
            rt.restart()

        with pytest.raises(Exception) as exc_info:
            World(3).run(prog)
        assert any(
            isinstance(e, StorageError) for e in exc_info.value.failures.values()
        )
