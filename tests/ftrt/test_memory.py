"""MemoryRegistry: capture/restore of registered regions."""

import numpy as np
import pytest

from repro.ftrt import MemoryRegistry


class TestRegistration:
    def test_register_and_names(self):
        reg = MemoryRegistry()
        reg.register("a", np.zeros(4))
        reg.register("b", bytearray(8))
        assert reg.names == ["a", "b"]
        assert reg.nbytes == 40

    def test_duplicate_name_rejected(self):
        reg = MemoryRegistry()
        reg.register("a", np.zeros(1))
        with pytest.raises(ValueError):
            reg.register("a", np.zeros(1))

    def test_immutable_bytes_rejected(self):
        reg = MemoryRegistry()
        with pytest.raises(TypeError):
            reg.register("a", b"immutable")

    def test_readonly_array_rejected(self):
        arr = np.zeros(4)
        arr.flags.writeable = False
        with pytest.raises(TypeError):
            MemoryRegistry().register("a", arr)

    def test_unregister(self):
        reg = MemoryRegistry()
        reg.register("a", np.zeros(1))
        reg.unregister("a")
        assert reg.names == []
        with pytest.raises(KeyError):
            reg.unregister("a")


class TestCaptureRestore:
    def test_capture_reflects_current_values(self):
        reg = MemoryRegistry()
        arr = np.arange(8, dtype=np.float64)
        reg.register("x", arr)
        ds = reg.capture()
        assert ds.to_bytes() == arr.tobytes()
        arr[0] = 99.0  # capture is a live view: dump reads current state
        assert reg.capture().to_bytes() == arr.tobytes()

    def test_restore_roundtrip_in_place(self):
        reg = MemoryRegistry()
        arr = np.arange(6, dtype=np.int64)
        buf = bytearray(b"hello!")
        reg.register("arr", arr)
        reg.register("buf", buf)
        from repro.core.chunking import Dataset

        snapshot = Dataset([bytes(arr.tobytes()), bytes(buf)])
        arr[:] = -1
        buf[:] = b"XXXXXX"
        reg.restore(snapshot)
        assert list(arr) == [0, 1, 2, 3, 4, 5]
        assert buf == b"hello!"

    def test_restore_segment_count_mismatch(self):
        from repro.core.chunking import Dataset

        reg = MemoryRegistry()
        reg.register("a", np.zeros(2))
        with pytest.raises(ValueError, match="mismatch"):
            reg.restore(Dataset([b"x", b"y"]))

    def test_restore_size_mismatch(self):
        from repro.core.chunking import Dataset

        reg = MemoryRegistry()
        reg.register("a", np.zeros(2))
        with pytest.raises(ValueError, match="size changed"):
            reg.restore(Dataset([b"abc"]))
