"""Checkpoint-interval theory: Young/Daly formulas and the failure-injected
timeline simulator that validates them."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftrt.interval import (
    daly_interval,
    expected_waste,
    simulate_run,
    young_interval,
)


class TestFormulas:
    def test_young_formula(self):
        assert young_interval(10.0, 20_000.0) == pytest.approx(632.455, rel=1e-4)

    def test_daly_reduces_to_young_for_small_delta(self):
        y = young_interval(1.0, 1e7)
        d = daly_interval(1.0, 1e7)
        assert d == pytest.approx(y, rel=0.01)

    def test_daly_degenerate_regime(self):
        assert daly_interval(100.0, 40.0) == 40.0

    @pytest.mark.parametrize("bad", [(0, 100), (10, 0), (-1, 100)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            young_interval(*bad)

    @given(st.floats(0.1, 1e3), st.floats(1e3, 1e7))
    @settings(max_examples=30)
    def test_cheaper_checkpoints_shorten_the_interval(self, delta, mtbf):
        """The compounding benefit of the paper's cheaper dumps."""
        assert young_interval(delta / 4.0, mtbf) == pytest.approx(
            young_interval(delta, mtbf) / 2.0
        )


class TestExpectedWaste:
    def test_young_interval_near_optimal(self):
        delta, mtbf = 30.0, 50_000.0
        tau_star = young_interval(delta, mtbf)
        best = expected_waste(tau_star, delta, mtbf)
        for factor in (0.25, 0.5, 2.0, 4.0):
            assert expected_waste(tau_star * factor, delta, mtbf) >= best * 0.999

    def test_waste_positive(self):
        assert expected_waste(600, 30, 50_000) > 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            expected_waste(0, 1, 100)


class TestSimulatedRun:
    def test_no_failures_counts_checkpoints_exactly(self):
        run = simulate_run(
            work_seconds=1000, interval_seconds=100, checkpoint_seconds=5,
            mtbf_seconds=1e12, seed=1,
        )
        assert run.failures == 0
        # 10 segments; the final one completes the job without a checkpoint.
        assert run.checkpoints == 9
        assert run.total_time == pytest.approx(1000 + 9 * 5)
        assert run.overhead_fraction == pytest.approx(0.045)

    def test_failures_cause_rework(self):
        run = simulate_run(
            work_seconds=5000, interval_seconds=200, checkpoint_seconds=10,
            mtbf_seconds=600, restart_seconds=30, seed=7,
        )
        assert run.failures > 0
        assert run.rework_time > 0
        assert run.total_time > 5000

    def test_deterministic_per_seed(self):
        kwargs = dict(work_seconds=3000, interval_seconds=150,
                      checkpoint_seconds=10, mtbf_seconds=500, seed=42)
        assert simulate_run(**kwargs) == simulate_run(**kwargs)

    def test_seed_changes_outcome(self):
        kwargs = dict(work_seconds=3000, interval_seconds=150,
                      checkpoint_seconds=10, mtbf_seconds=400)
        a = simulate_run(seed=1, **kwargs)
        b = simulate_run(seed=2, **kwargs)
        assert a.total_time != b.total_time

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_run(0, 10, 1, 100)
        with pytest.raises(ValueError):
            simulate_run(10, 0, 1, 100)

    def test_analytic_interval_beats_extremes_empirically(self):
        """Averaged over seeds, Young's interval outperforms checkpointing
        8x too often and 8x too rarely."""
        delta, mtbf, work = 20.0, 2_000.0, 30_000.0
        tau = young_interval(delta, mtbf)

        def mean_overhead(interval):
            runs = [
                simulate_run(work, interval, delta, mtbf, restart_seconds=10,
                             seed=s)
                for s in range(25)
            ]
            return sum(r.total_time for r in runs) / len(runs)

        at_star = mean_overhead(tau)
        assert at_star < mean_overhead(tau / 8)
        assert at_star < mean_overhead(tau * 8)

    def test_simulation_tracks_analytic_waste(self):
        """Monte-Carlo overhead lands near the first-order formula."""
        delta, mtbf, work = 10.0, 3_000.0, 100_000.0
        tau = young_interval(delta, mtbf)
        runs = [
            simulate_run(work, tau, delta, mtbf, seed=s) for s in range(30)
        ]
        measured = sum(r.overhead_fraction for r in runs) / len(runs)
        analytic = expected_waste(tau, delta, mtbf)
        assert measured == pytest.approx(analytic, rel=0.5)
