"""CheckpointRuntime: interval scheduling, restart, failure survival."""

import numpy as np
import pytest

from repro.core import DumpConfig, Strategy
from repro.ftrt import CheckpointRuntime
from repro.simmpi import World
from repro.storage import Cluster


def spmd_app(cluster, cfg, n_steps, interval, fail_after=None, fail_nodes=()):
    """A toy SPMD iterative app with checkpoint-restart."""

    def prog(comm):
        rt = CheckpointRuntime(comm, cluster, cfg, interval=interval)
        state = np.full(64, float(comm.rank))
        shared = np.zeros(128)  # identical across ranks -> natural replicas
        rt.memory.register("state", state)
        rt.memory.register("shared", shared)
        for step in range(1, n_steps + 1):
            state += 1.0
            shared[:] = step
            rt.maybe_checkpoint(step)
        if fail_after is not None:
            comm.barrier()
            if comm.rank == 0:
                for node in fail_nodes:
                    cluster.fail_node(node)
            comm.barrier()
            rt.restart()
        return state.copy(), shared.copy(), rt.stats

    return prog


class TestScheduling:
    def test_checkpoints_at_interval_multiples(self):
        cluster = Cluster(4)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)
        results = World(4).run(spmd_app(cluster, cfg, n_steps=10, interval=3))
        for _state, _shared, stats in results:
            assert stats.checkpoints_taken == 3  # steps 3, 6, 9

    def test_step_zero_not_checkpointed(self):
        cluster = Cluster(2)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=5)
            rt.memory.register("x", np.zeros(4))
            assert rt.maybe_checkpoint(0) is None
            assert rt.last_dump_id is None
            return True

        assert all(World(2).run(prog))

    def test_invalid_interval(self):
        cluster = Cluster(1)
        cfg = DumpConfig(replication_factor=1)

        def prog(comm):
            CheckpointRuntime(comm, cluster, cfg, interval=0)

        with pytest.raises(Exception):
            World(1).run(prog)

    def test_restart_without_checkpoint_raises(self):
        cluster = Cluster(1)
        cfg = DumpConfig(replication_factor=1, chunk_size=64)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            rt.memory.register("x", np.zeros(2))
            rt.restart()

        with pytest.raises(Exception):
            World(1).run(prog)


class TestRestart:
    def test_restart_restores_last_checkpoint(self):
        cluster = Cluster(4)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)
        results = World(4).run(
            spmd_app(cluster, cfg, n_steps=10, interval=4, fail_after=10)
        )
        for rank, (state, shared, stats) in enumerate(results):
            # Last checkpoint at step 8: state was rank + 8.
            assert np.all(state == rank + 8)
            assert np.all(shared == 8)
            assert stats.restarts == 1

    def test_restart_after_node_failures(self):
        n, k = 6, 3
        cluster = Cluster(n)
        cfg = DumpConfig(replication_factor=k, chunk_size=64, f_threshold=1024)
        results = World(n).run(
            spmd_app(cluster, cfg, n_steps=6, interval=3, fail_after=6,
                     fail_nodes=(1, 4))
        )
        for rank, (state, shared, stats) in enumerate(results):
            if rank in (1, 4):
                continue  # their nodes are gone; survivors must restore
            assert np.all(state == rank + 6)

    def test_restart_specific_dump_id(self):
        cluster = Cluster(3)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            state = np.zeros(16)
            rt.memory.register("s", state)
            for step in (1, 2, 3):
                state[:] = step
                rt.maybe_checkpoint(step)
            used = rt.restart(dump_id=0)  # roll back to the first checkpoint
            return used, state.copy()

        for used, state in World(3).run(prog):
            assert used == 0
            assert np.all(state == 1.0)

    def test_stats_accumulate(self):
        cluster = Cluster(2)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)
        results = World(2).run(spmd_app(cluster, cfg, n_steps=4, interval=2))
        for _s, _sh, stats in results:
            assert stats.checkpoints_taken == 2
            assert stats.bytes_captured == 2 * (64 * 8 + 128 * 8)
            assert len(stats.reports) == 2


class TestCollectiveRestart:
    def test_restart_collective_restores_state(self):
        n, k = 5, 3
        cluster = Cluster(n)
        cfg = DumpConfig(replication_factor=k, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=2)
            state = np.full(32, float(comm.rank))
            rt.memory.register("state", state)
            for step in (1, 2, 3, 4):
                state += 1.0
                rt.maybe_checkpoint(step)
            state[:] = -99.0  # diverge, then roll back collectively
            used = rt.restart_collective()
            return used, state.copy()

        for rank, (used, state) in enumerate(World(n).run(prog)):
            assert used == 1  # checkpoint at step 4 has dump_id 1
            assert np.all(state == rank + 4)

    def test_restart_collective_without_checkpoint_raises(self):
        cluster = Cluster(1)
        cfg = DumpConfig(replication_factor=1, chunk_size=64)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            rt.memory.register("x", np.zeros(2))
            rt.restart_collective()

        with pytest.raises(Exception):
            World(1).run(prog)


class TestRepair:
    def test_repair_tops_cluster_back_up_to_k(self):
        n, k = 6, 3
        cluster = Cluster(n)
        cfg = DumpConfig(replication_factor=k, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            state = np.full(32, float(comm.rank))
            rt.memory.register("state", state)
            state += 1.0
            rt.maybe_checkpoint(1)
            comm.barrier()
            if comm.rank == 0:
                cluster.fail_node(4)
            comm.barrier()
            report = rt.repair()
            return report, rt.stats.repairs

        results = World(n).run(prog)
        reports = [report for report, _count in results]
        assert all(count == 1 for _r, count in results)
        assert all(r.complete for r in reports)
        assert reports[0].chunks_moved > 0
        # Every rank gets the identical merged report.
        assert all(r.chunks_moved == reports[0].chunks_moved for r in reports)

        from repro.repair import scan_cluster
        assert scan_cluster(cluster, k).clean

    def test_auto_repair_runs_after_restart(self):
        n, k = 6, 3
        cluster = Cluster(n)
        cfg = DumpConfig(replication_factor=k, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1,
                                   auto_repair=True)
            state = np.full(16, float(comm.rank))
            rt.memory.register("state", state)
            state += 1.0
            rt.maybe_checkpoint(1)
            comm.barrier()
            if comm.rank == 0:
                cluster.fail_node(2)
            comm.barrier()
            rt.restart()
            return state.copy(), rt.stats

        results = World(n).run(prog)
        for rank, (state, stats) in enumerate(results):
            if rank != 2:
                assert np.all(state == rank + 1)
            assert stats.repairs == 1
            assert len(stats.repair_reports) == 1
            assert stats.repair_reports[0].complete

        from repro.repair import scan_cluster
        assert scan_cluster(cluster, k).clean

    def test_repair_without_failures_is_clean(self):
        cluster = Cluster(4)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            rt.memory.register("x", np.ones(8) * comm.rank)
            rt.maybe_checkpoint(1)
            return rt.repair()

        for report in World(4).run(prog):
            assert report.clean
            assert report.chunks_moved == 0


class TestTimeline:
    def test_runtime_feeds_its_timeline(self):
        """Dumps, restores and repairs land tick-tagged samples on the
        runtime's timeline, stamped with the app's logical step."""
        cluster = Cluster(4)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=2)
            rt.memory.register("x", np.zeros(64))
            for step in range(1, 5):
                rt.maybe_checkpoint(step)
            if comm.rank == 0:
                rt.restart()
            comm.barrier()
            return rt.timeline.op_counts(), rt.timeline.latest_tick()

        results = World(4).run(prog)
        counts, latest = results[0]
        assert counts["dump"] == 2  # steps 2 and 4
        assert counts["restore"] == 1
        assert latest == 4  # logical step, not wall clock
        for _counts, other_latest in results[1:]:
            assert other_latest == 4

    def test_dump_samples_carry_strategy_and_bytes(self):
        cluster = Cluster(2)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            rt.memory.register("x", np.ones(64))
            rt.maybe_checkpoint(1)
            (sample,) = rt.timeline.samples(op="dump")
            assert sample.backend == "ftrt"
            assert sample.strategy == cfg.strategy.value
            assert sample.values["logical_bytes"] > 0
            assert sample.values["latency_s"] >= 0
            return True

        assert all(World(2).run(prog))

    def test_restore_sample_reports_locality(self):
        cluster = Cluster(4)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            rt.memory.register("x", np.full(256, float(comm.rank)))
            rt.maybe_checkpoint(1)
            rt.restart()
            (sample,) = rt.timeline.samples(op="restore")
            assert 0.0 <= sample.values["locality"] <= 1.0
            return rt.timeline.sketch("restore", "latency_s").count

        assert all(c == 1 for c in World(4).run(prog))

    def test_repair_lands_on_the_timeline(self):
        cluster = Cluster(4)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)

        def prog(comm):
            rt = CheckpointRuntime(comm, cluster, cfg, interval=1)
            rt.memory.register("x", np.full(256, float(comm.rank)))
            rt.maybe_checkpoint(1)
            comm.barrier()
            if comm.rank == 0:
                cluster.fail_node(3)
            comm.barrier()
            rt.repair()
            return rt.timeline.op_counts().get("repair", 0)

        assert all(c == 1 for c in World(4).run(prog))

    def test_shared_timeline_can_be_injected(self):
        from repro.obs.timeline import TimelineStore

        cluster = Cluster(2)
        cfg = DumpConfig(replication_factor=2, chunk_size=64, f_threshold=1024)
        stores = [TimelineStore(), TimelineStore()]

        def prog(comm):
            rt = CheckpointRuntime(
                comm, cluster, cfg, interval=1, timeline=stores[comm.rank]
            )
            rt.memory.register("x", np.zeros(64))
            rt.maybe_checkpoint(1)
            return True

        assert all(World(2).run(prog))
        merged = TimelineStore()
        for store in stores:
            merged.merge(store)
        assert merged.sketch("dump", "latency_s").count == 2
