"""Trace transport through the process backend.

Spans, phase counters and metrics are recorded inside forked rank
processes; the child's ``finally`` ships the trace back on the results
queue even when the rank function raises.  These tests pin the contract
the observability layer builds on: after ``ProcessWorld.run`` the parent's
``world.comms[rank].trace`` is byte-identical (under pickle) to what the
rank recorded — for every rank, including one that crashes mid-dump.
"""

import pickle

import numpy as np
import pytest

from repro.core import DumpConfig, dump_output
from repro.core.chunking import Dataset
from repro.simmpi import DeadlockError, ProcessWorld, WorldError

from repro.storage import Cluster

N = 3
CS = 256


def _traced_program(comm):
    comm.trace.configure("span")
    with comm.trace.phase("work"):
        comm.send(b"x" * (comm.rank + 1), (comm.rank + 1) % comm.size, tag=1)
        comm.recv((comm.rank - 1) % comm.size, tag=1)
        with comm.trace.span("inner", rank=comm.rank):
            comm.trace.metrics.counter("steps").inc(comm.rank + 1)
    comm.trace.metrics.gauge("done").set(1.0)
    # The child's own serialisation of its trace, taken at return time.
    return pickle.dumps(comm.trace)


class TestSuccessfulTransport:
    def test_traces_byte_identical_for_every_rank(self):
        world = ProcessWorld(N, timeout=30)
        results = world.run(_traced_program)
        for rank, blob in enumerate(results):
            transported = world.comms[rank].trace
            # Raw pickles can differ by memo references (string interning
            # differs between the recording process and the parent), so
            # compare after one normalising unpickle on each side.
            canonical = pickle.dumps(pickle.loads(blob))
            assert pickle.dumps(transported) == canonical, f"rank {rank} differs"

    def test_transported_content(self):
        world = ProcessWorld(N, timeout=30)
        world.run(_traced_program)
        for rank in range(N):
            trace = world.comms[rank].trace
            assert trace.rank == rank
            assert trace.level == "span"
            assert [s.name for s in trace.spans] == ["work", "inner"]
            assert trace.spans[1].parent == 0
            assert trace.spans[1].attrs == {"rank": rank}
            assert trace.counters("work").sent_bytes == rank + 1
            assert trace.metrics.counters["steps"].value == rank + 1
            assert trace.metrics.gauges["done"].value == 1.0


class TestCrashedRankTransport:
    def test_raising_rank_trace_reaches_parent(self):
        def boom(comm):
            comm.trace.configure("span")
            with comm.trace.phase("setup"):
                comm.trace.metrics.counter("ticks").inc()
            if comm.rank == 1:
                raise RuntimeError("deliberate mid-run failure")
            comm.barrier()
            return comm.rank

        world = ProcessWorld(N, timeout=15)
        with pytest.raises(WorldError) as err:
            world.run(boom)
        assert isinstance(err.value.failures[1], RuntimeError)

        trace = world.comms[1].trace
        assert [s.name for s in trace.spans] == ["setup"]
        assert trace.spans[0].closed
        assert trace.counters("setup").seconds > 0
        assert trace.metrics.counters["ticks"].value == 1
        # Survivors (released from the aborted barrier) transported too.
        for rank in (0, 2):
            assert world.comms[rank].trace.metrics.counters["ticks"].value == 1

    def test_mid_dump_crash_keeps_partial_span_tree(self):
        cfg = DumpConfig(
            replication_factor=2,
            chunk_size=CS,
            f_threshold=1 << 14,
            trace_level="span",
        )
        cluster = Cluster(N)
        datasets = [
            Dataset([np.random.RandomState(r).bytes(16 * CS)]) for r in range(N)
        ]

        def hook(phase, rank):
            if phase == "exchange" and rank == 1:
                raise RuntimeError("injected mid-dump failure")

        def prog(comm):
            dump_output(
                comm,
                datasets[comm.rank],
                cfg,
                cluster,
                dump_id=0,
                phase_hook=hook,
            )
            return comm.rank

        world = ProcessWorld(N, timeout=15)
        with pytest.raises(WorldError) as err:
            world.run(prog)
        assert isinstance(err.value.failures[1], RuntimeError)
        assert all(
            isinstance(exc, (RuntimeError, DeadlockError))
            for exc in err.value.failures.values()
        )

        trace = world.comms[1].trace
        names = [s.name for s in trace.spans]
        assert "dump" in names and "hash" in names
        assert "exchange" in names  # the phase it died in was captured
        assert "write" not in names  # ...and nothing after it
        assert all(s.closed for s in trace.spans)
        assert "exchange" in trace.phases
