"""Point-to-point semantics: matching, ordering, errors, timeouts."""

import pytest

from repro.simmpi import DeadlockError, SimMPIError, World, run_spmd


class TestSendRecv:
    def test_basic_pair(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        results = run_spmd(2, prog)
        assert results[1] == {"x": 1}

    def test_tag_matching_is_selective(self):
        """A recv on tag B must not consume a message sent on tag A."""

        def prog(comm):
            if comm.rank == 0:
                comm.send("on-tag-1", dest=1, tag=1)
                comm.send("on-tag-2", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        results = run_spmd(2, prog)
        assert results[1] == ("on-tag-1", "on-tag-2")

    def test_non_overtaking_same_tag(self):
        """Messages between one pair on one tag arrive in send order."""

        def prog(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(20)]

        assert run_spmd(2, prog)[1] == list(range(20))

    def test_source_matching(self):
        def prog(comm):
            if comm.rank in (0, 1):
                comm.send(f"from-{comm.rank}", dest=2)
                return None
            b = comm.recv(source=1)
            a = comm.recv(source=0)
            return (a, b)

        assert run_spmd(3, prog)[2] == ("from-0", "from-1")

    def test_self_send(self):
        def prog(comm):
            comm.send("loop", dest=comm.rank, tag=3)
            return comm.recv(source=comm.rank, tag=3)

        assert run_spmd(1, prog) == ["loop"]

    def test_self_send_not_charged(self):
        world = World(1)

        def prog(comm):
            comm.send(b"x" * 100, dest=0)
            comm.recv(source=0)
            return comm.trace.sent_bytes

        assert world.run(prog) == [0]

    def test_send_out_of_range_dest(self):
        def prog(comm):
            comm.send(1, dest=5)

        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog)
        assert "out of range" in str(exc_info.value.failures[0])

    def test_recv_timeout_raises_deadlock(self):
        def prog(comm):
            comm.recv(source=0 if comm.rank else comm.rank, timeout=0.05)

        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog, timeout=0.05)
        assert any(
            isinstance(e, DeadlockError) for e in exc_info.value.failures.values()
        )

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        results = run_spmd(5, prog)
        assert results == [(r - 1) % 5 for r in range(5)]

    def test_trace_charges_both_ends(self):
        world = World(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(b"z" * 77, dest=1)
            else:
                comm.recv(source=0)
            return (comm.trace.sent_bytes, comm.trace.recv_bytes)

        sent0, recv1 = world.run(prog)
        assert sent0 == (77, 0)
        assert recv1 == (0, 77)


class TestBarrier:
    def test_barrier_synchronizes(self):
        import threading

        flag = threading.Event()

        def prog(comm):
            if comm.rank == 0:
                flag.set()
            comm.barrier()
            # After the barrier every rank must observe rank 0's write.
            return flag.is_set()

        assert all(run_spmd(4, prog))

    def test_repeated_barriers(self):
        def prog(comm):
            for _ in range(10):
                comm.barrier()
            return comm.rank

        assert run_spmd(3, prog) == [0, 1, 2]


class TestCollectiveTags:
    def test_tags_advance_in_lockstep(self):
        def prog(comm):
            return [comm.next_collective_tag() for _ in range(3)]

        results = run_spmd(4, prog)
        assert all(tags == results[0] for tags in results)
        assert results[0] == [-1, -2, -3]
