"""Sub-communicators (Comm.split): group-local ranks, collectives, windows."""

import operator

import pytest

from repro.simmpi import Window, collectives, run_spmd


class TestSplit:
    def test_groups_and_ranks(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.rank, sub.size, sub.group

        results = run_spmd(6, prog)
        for parent_rank, (rank, size, group) in enumerate(results):
            assert size == 3
            assert group == [r for r in range(6) if r % 2 == parent_rank % 2]
            assert group[rank] == parent_rank

    def test_key_reorders_group(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        results = run_spmd(4, prog)
        assert results == [3, 2, 1, 0]

    def test_group_local_point_to_point(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            if sub.rank == 0:
                sub.send(("hello", comm.rank), dest=1)
                return None
            return sub.recv(source=0)

        results = run_spmd(6, prog)
        for pair_start in (0, 2, 4):
            assert results[pair_start + 1] == ("hello", pair_start)

    def test_concurrent_group_collectives(self):
        """Disjoint groups run allreduce simultaneously without cross-talk."""

        def prog(comm):
            sub = comm.split(color=comm.rank % 3)
            return collectives.allreduce(sub, comm.rank, operator.add)

        results = run_spmd(9, prog)
        for rank, value in enumerate(results):
            group = [r for r in range(9) if r % 3 == rank % 3]
            assert value == sum(group)

    def test_group_barrier_does_not_deadlock(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            for _ in range(3):
                sub.barrier()
            return True

        assert all(run_spmd(5, prog))

    def test_parent_traffic_unaffected(self):
        """Parent-tag messages must not be consumed by subcomm traffic."""

        def prog(comm):
            if comm.rank == 0:
                comm.send("parent-msg", dest=1, tag=5)
            sub = comm.split(color=0)
            collectives.allgather(sub, sub.rank)
            if comm.rank == 1:
                return comm.recv(source=0, tag=5)
            return None

        assert run_spmd(3, prog)[1] == "parent-msg"

    def test_windows_on_subcomm(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            win = Window.create(sub, 4)
            peer = (sub.rank + 1) % sub.size
            win.put(bytes([comm.rank] * 4), peer, 0)
            win.fence()
            view = win.local_view()
            win.free()
            return view

        results = run_spmd(4, prog)
        # groups {0,2} and {1,3}: each receives its group peer's rank byte
        assert results[0] == bytes([2] * 4)
        assert results[2] == bytes([0] * 4)
        assert results[1] == bytes([3] * 4)
        assert results[3] == bytes([1] * 4)

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 4)  # two groups of 4
            quarter = half.split(color=half.rank // 2)  # pairs
            return collectives.allreduce(quarter, comm.rank, operator.add)

        results = run_spmd(8, prog)
        assert results == [1, 1, 5, 5, 9, 9, 13, 13]

    def test_singleton_groups(self):
        def prog(comm):
            sub = comm.split(color=comm.rank)  # everyone alone
            return sub.size, collectives.allreduce(sub, comm.rank, operator.add)

        results = run_spmd(4, prog)
        assert results == [(1, r) for r in range(4)]
