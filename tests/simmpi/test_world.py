"""SPMD execution harness: results, failure propagation, traces."""

import pytest

from repro.simmpi import World, WorldError, run_spmd
from repro.simmpi.errors import SimMPIError


class TestRun:
    def test_results_in_rank_order(self):
        assert run_spmd(5, lambda c: c.rank ** 2) == [0, 1, 4, 9, 16]

    def test_args_and_kwargs_forwarded(self):
        def prog(comm, base, mult=1):
            return base + comm.rank * mult

        assert run_spmd(3, prog, 100, mult=10) == [100, 110, 120]

    def test_single_rank(self):
        assert run_spmd(1, lambda c: (c.rank, c.size)) == [(0, 1)]

    def test_invalid_size(self):
        with pytest.raises(SimMPIError):
            World(0)

    def test_rank_and_size_visible(self):
        results = run_spmd(4, lambda c: (c.rank, c.size))
        assert results == [(r, 4) for r in range(4)]


class TestFailurePropagation:
    def test_single_rank_failure_becomes_world_error(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("rank 2 exploded")
            comm.barrier()

        with pytest.raises(WorldError) as exc_info:
            run_spmd(4, prog, timeout=5)
        assert 2 in exc_info.value.failures
        assert "exploded" in str(exc_info.value.failures[2])

    def test_failure_releases_peers_blocked_in_barrier(self):
        """A crash must not leave other ranks hanging until timeout."""
        import time

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early crash")
            comm.barrier()

        start = time.time()
        with pytest.raises(WorldError):
            run_spmd(3, prog, timeout=30)
        assert time.time() - start < 10

    def test_multiple_failures_all_reported(self):
        def prog(comm):
            raise RuntimeError(f"rank {comm.rank}")

        with pytest.raises(WorldError) as exc_info:
            run_spmd(3, prog)
        assert set(exc_info.value.failures) == {0, 1, 2}


class TestTraces:
    def test_comms_exposed_after_run(self):
        world = World(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(b"abc", dest=1)
            else:
                comm.recv(source=0)

        world.run(prog)
        assert world.comms[0].trace.sent_bytes == 3
        assert world.comms[1].trace.recv_bytes == 3


class TestJoinTimeout:
    def test_stuck_rank_reported_instead_of_hanging(self):
        import time as _time

        def prog(comm):
            if comm.rank == 1:
                _time.sleep(30)  # well past the world timeout
            return comm.rank

        start = _time.time()
        with pytest.raises(WorldError) as exc_info:
            run_spmd(3, prog, timeout=0.5)
        assert _time.time() - start < 10
        assert 1 in exc_info.value.failures
        assert "did not finish" in str(exc_info.value.failures[1])
        # Well-behaved ranks are not blamed.
        assert 0 not in exc_info.value.failures
        assert 2 not in exc_info.value.failures

    def test_fast_ranks_unaffected_by_timeout_join(self):
        assert run_spmd(4, lambda c: c.rank, timeout=5) == [0, 1, 2, 3]
