"""Execution-backend layer: selection/normalization, the process backend's
p2p/collectives/windows, crash surfacing and environment overrides."""

import os
import queue

import pytest

from repro.simmpi import (
    BACKENDS,
    DeadlockError,
    ProcessWorld,
    RankCrashError,
    Window,
    World,
    WorldError,
    collectives,
    create_world,
    normalize_backend,
    resolve_timeout,
    run_spmd,
)
from repro.simmpi.backend import BACKEND_ENV, DEFAULT_TIMEOUT, TIMEOUT_ENV, world_class


class TestBackendRegistry:
    def test_normalize_aliases(self):
        assert normalize_backend("thread") == "thread"
        assert normalize_backend("threads") == "thread"
        assert normalize_backend("threading") == "thread"
        assert normalize_backend("process") == "process"
        assert normalize_backend("processes") == "process"
        assert normalize_backend("proc") == "process"
        assert normalize_backend("mp") == "process"
        assert normalize_backend("PROCESS") == "process"

    def test_normalize_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert normalize_backend(None) == "thread"

    def test_normalize_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert normalize_backend(None) == "process"
        # An explicit argument beats the environment.
        assert normalize_backend("thread") == "thread"

    def test_normalize_rejects_unknown(self):
        from repro.simmpi.errors import SimMPIError

        with pytest.raises(SimMPIError, match="unknown SPMD backend"):
            normalize_backend("mpi4py")

    def test_world_class_mapping(self):
        assert world_class("thread") is World
        assert world_class("process") is ProcessWorld
        assert tuple(BACKENDS) == ("thread", "process")

    def test_create_world(self):
        assert isinstance(create_world(2), World)
        assert isinstance(create_world(2, backend="process"), ProcessWorld)
        assert create_world(2, backend="process", timeout=7.5).timeout == 7.5

    def test_backend_names(self):
        assert World.backend_name == "thread"
        assert ProcessWorld.backend_name == "process"


class TestTimeoutResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "123")
        assert resolve_timeout(5.0) == 5.0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "42.5")
        assert resolve_timeout(None) == 42.5

    def test_default(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert resolve_timeout(None) == DEFAULT_TIMEOUT

    def test_invalid_env_rejected(self, monkeypatch):
        from repro.simmpi.errors import SimMPIError

        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(SimMPIError, match=TIMEOUT_ENV):
            resolve_timeout(None)
        monkeypatch.setenv(TIMEOUT_ENV, "-3")
        with pytest.raises(SimMPIError, match="must be > 0"):
            resolve_timeout(None)

    def test_world_reads_env(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "11")
        assert World(2).timeout == 11.0
        assert ProcessWorld(2).timeout == 11.0

    def test_run_spmd_timeout_passthrough(self):
        # A too-short timeout must surface as DeadlockError, not a hang.
        def stuck(comm):
            if comm.rank == 0:
                comm.recv(1, tag=99)  # never sent
            return comm.rank

        with pytest.raises(WorldError) as err:
            run_spmd(2, stuck, timeout=0.3)
        assert any(
            isinstance(e, DeadlockError) for e in err.value.failures.values()
        )


class TestProcessBackend:
    """The multiprocessing + shared_memory backend, small worlds."""

    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.rank * 10, backend="process") == [0]

    def test_point_to_point_ring(self):
        def ring(comm):
            comm.send(("hello", comm.rank), (comm.rank + 1) % comm.size, tag=3)
            return comm.recv((comm.rank - 1) % comm.size, tag=3)

        results = run_spmd(3, ring, backend="process", timeout=30)
        assert results == [("hello", 2), ("hello", 0), ("hello", 1)]

    def test_collectives(self):
        def prog(comm):
            total = collectives.allreduce(comm, comm.rank + 1, lambda a, b: a + b)
            everyone = collectives.allgather(comm, comm.rank**2)
            word = collectives.bcast(
                comm, "spmd" if comm.rank == 1 else None, root=1
            )
            return total, everyone, word

        for total, everyone, word in run_spmd(4, prog, backend="process", timeout=30):
            assert total == 10
            assert everyone == [0, 1, 4, 9]
            assert word == "spmd"

    def test_shared_memory_window_put_and_fence(self):
        def prog(comm):
            win = Window.create(comm, 16)
            peer = (comm.rank + 1) % comm.size
            win.put(bytes([comm.rank + 1]) * 8, peer, 0)
            win.put_many([(8, b"wxyz"), (12, b"1234")], peer)
            win.fence()
            view = win.local_view()
            filled = win.local_filled()
            win.free()
            return view, filled

        results = run_spmd(3, prog, backend="process", timeout=30)
        for rank, (view, filled) in enumerate(results):
            writer = (rank - 1) % 3
            assert view == bytes([writer + 1]) * 8 + b"wxyz1234"
            assert filled == 16

    def test_window_receive_accounting_drained_at_fence(self):
        def prog(comm):
            with comm.trace.phase("exchange"):
                win = Window.create(comm, 8)
                win.put(b"A" * 8, (comm.rank + 1) % comm.size, 0)
                win.fence()
                win.free()
            c = comm.trace.counters("exchange")
            return c.put_bytes, c.recv_bytes, c.recv_msgs

        for put_b, recv_b, recv_m in run_spmd(2, prog, backend="process", timeout=30):
            assert put_b == 8
            assert recv_b == 8
            assert recv_m == 1

    def test_subcommunicator_split(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return collectives.allgather(sub, comm.rank)

        results = run_spmd(4, prog, backend="process", timeout=30)
        assert results == [[0, 2], [1, 3], [0, 2], [1, 3]]

    def test_traces_transported_to_parent(self):
        world = ProcessWorld(2, timeout=30)

        def prog(comm):
            comm.send(b"x" * 100, 1 - comm.rank, tag=1)
            comm.recv(1 - comm.rank, tag=1)
            return comm.rank

        assert world.run(prog) == [0, 1]
        for rank in range(2):
            trace = world.comms[rank].trace
            assert trace.sent_bytes == 100
            assert trace.recv_bytes == 100

    def test_no_shared_memory_leak(self):
        def prog(comm):
            win = Window.create(comm, 4096)
            win.put(b"z" * 4096, (comm.rank + 1) % comm.size, 0)
            win.fence()
            win.free()
            return True

        assert all(run_spmd(2, prog, backend="process", timeout=30))
        leftovers = [n for n in os.listdir("/dev/shm") if n.startswith("psm")]
        assert leftovers == []

    def test_fork_state_is_isolated(self):
        # Rank-side mutation of an inherited object must not reach the parent.
        box = {"value": 0}

        def prog(comm):
            box["value"] = comm.rank + 1
            return box["value"]

        assert run_spmd(2, prog, backend="process", timeout=30) == [1, 2]
        assert box["value"] == 0


class TestProcessBackendFailures:
    def test_rank_exception_transported(self):
        def boom(comm):
            if comm.rank == 1:
                raise ValueError("deliberate failure on rank 1")
            comm.barrier()
            return comm.rank

        with pytest.raises(WorldError) as err:
            run_spmd(3, boom, backend="process", timeout=10)
        failures = err.value.failures
        assert isinstance(failures[1], ValueError)
        assert "deliberate failure" in str(failures[1])
        # Peers released from the aborted barrier report DeadlockError.
        assert all(
            isinstance(failures[r], DeadlockError) for r in (0, 2) if r in failures
        )

    def test_hard_process_death_is_rank_crash(self):
        def die(comm):
            if comm.rank == 1:
                os._exit(41)  # no exception, no result: a real crash
            comm.barrier()
            return comm.rank

        with pytest.raises(WorldError) as err:
            run_spmd(2, die, backend="process", timeout=10)
        failures = err.value.failures
        assert isinstance(failures[1], RankCrashError)
        assert "41" in str(failures[1])

    def test_unpicklable_result_reported_not_hung(self):
        def prog(comm):
            if comm.rank == 0:
                return lambda: None  # unpicklable
            return comm.rank

        with pytest.raises(WorldError) as err:
            run_spmd(2, prog, backend="process", timeout=10)
        assert 0 in err.value.failures

    def test_deadlock_detected(self):
        def stuck(comm):
            comm.recv((comm.rank + 1) % comm.size, tag=5)  # nobody sends

        with pytest.raises(WorldError) as err:
            run_spmd(2, stuck, backend="process", timeout=0.5)
        assert all(
            isinstance(e, DeadlockError) for e in err.value.failures.values()
        )

    def test_deliver_contract_raises_queue_empty(self):
        # BaseWorld.deliver's timeout contract (comm converts to DeadlockError).
        def prog(comm):
            if comm.rank == 0:
                with pytest.raises(queue.Empty):
                    comm.world.deliver(0, 1, 7, timeout=0.1)
            return True

        assert all(run_spmd(2, prog, backend="process", timeout=10))


class TestEnvBackendSelection:
    def test_run_spmd_honours_backend_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")

        def prog(comm):
            return type(comm.world).__name__, os.getpid()

        results = run_spmd(2, prog, timeout=30)
        names = {name for name, _pid in results}
        pids = {pid for _name, pid in results}
        assert names == {"ProcessWorld"}
        assert os.getpid() not in pids and len(pids) == 2

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        results = run_spmd(2, lambda comm: os.getpid(), backend="thread")
        assert set(results) == {os.getpid()}
