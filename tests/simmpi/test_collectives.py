"""Collective algorithms at every tree shape (powers of two and not)."""

import operator

import pytest
from hypothesis import given, strategies as st

from repro.simmpi import World, collectives, run_spmd

SIZES = [1, 2, 3, 4, 5, 6, 7, 8, 11, 16]


@pytest.mark.parametrize("size", SIZES)
class TestAllSizes:
    def test_allreduce_sum(self, size):
        results = run_spmd(size, lambda c: collectives.allreduce(c, c.rank + 1, operator.add))
        assert results == [size * (size + 1) // 2] * size

    def test_allreduce_set_union(self, size):
        """Non-numeric commutative operator."""

        def prog(comm):
            return collectives.allreduce(comm, {comm.rank}, lambda a, b: a | b)

        assert run_spmd(size, prog) == [set(range(size))] * size

    def test_allgather(self, size):
        results = run_spmd(size, lambda c: collectives.allgather(c, c.rank * 2))
        assert results == [[r * 2 for r in range(size)]] * size

    def test_bcast_from_every_root(self, size):
        for root in {0, size // 2, size - 1}:
            def prog(comm, root=root):
                payload = ("data", root) if comm.rank == root else None
                return collectives.bcast(comm, payload, root=root)

            assert run_spmd(size, prog) == [("data", root)] * size

    def test_reduce_at_root(self, size):
        root = size - 1

        def prog(comm):
            return collectives.reduce(comm, comm.rank, operator.add, root=root)

        results = run_spmd(size, prog)
        for rank, value in enumerate(results):
            if rank == root:
                assert value == size * (size - 1) // 2
            else:
                assert value is None

    def test_gather(self, size):
        def prog(comm):
            return collectives.gather(comm, chr(ord("a") + comm.rank), root=0)

        results = run_spmd(size, prog)
        assert results[0] == [chr(ord("a") + r) for r in range(size)]
        assert all(r is None for r in results[1:])

    def test_scatter(self, size):
        def prog(comm):
            values = [r * 10 for r in range(comm.size)] if comm.rank == 0 else None
            return collectives.scatter(comm, values, root=0)

        assert run_spmd(size, prog) == [r * 10 for r in range(size)]

    def test_alltoall(self, size):
        def prog(comm):
            return collectives.alltoall(
                comm, [(comm.rank, dest) for dest in range(comm.size)]
            )

        results = run_spmd(size, prog)
        for rank, got in enumerate(results):
            assert got == [(src, rank) for src in range(size)]


class TestScatterValidation:
    def test_scatter_wrong_length_raises(self):
        def prog(comm):
            values = [1] if comm.rank == 0 else None
            return collectives.scatter(comm, values, root=0)

        with pytest.raises(Exception):
            run_spmd(3, prog, timeout=2)

    def test_bad_root_raises(self):
        with pytest.raises(Exception):
            run_spmd(2, lambda c: collectives.bcast(c, 1, root=9), timeout=2)


class TestReductionShape:
    """The allreduce must be logarithmic — that's the paper's scalability
    argument for the fingerprint reduction."""

    @pytest.mark.parametrize("size", [4, 8, 16])
    def test_power_of_two_rounds(self, size):
        world = World(size)

        def prog(comm):
            collectives.allreduce(comm, 1, operator.add)
            return comm.trace.counters("default").sent_msgs

        msgs = world.run(prog)
        # Recursive doubling: exactly log2(size) messages per rank.
        assert all(m == size.bit_length() - 1 for m in msgs)

    @pytest.mark.parametrize("size", [3, 5, 6, 7, 12])
    def test_non_power_of_two_rounds_bounded(self, size):
        world = World(size)

        def prog(comm):
            collectives.allreduce(comm, 1, operator.add)
            return comm.trace.counters("default").sent_msgs

        msgs = world.run(prog)
        import math

        bound = math.floor(math.log2(size)) + 2
        assert max(msgs) <= bound

    def test_allgather_is_a_ring(self):
        size = 6
        world = World(size)

        def prog(comm):
            collectives.allgather(comm, comm.rank)
            return comm.trace.counters("default").sent_msgs

        assert world.run(prog) == [size - 1] * size


class TestOperatorContract:
    def test_allreduce_argument_order_consistency(self):
        """With a symmetric deterministic op, every rank must converge to
        the same value — this is what lets coll-dedup skip the final
        broadcast of the global view."""

        def sym_op(a, b):
            return tuple(sorted(set(a) | set(b)))

        for size in (2, 3, 5, 8, 13):
            results = run_spmd(
                size, lambda c: collectives.allreduce(c, (c.rank,), sym_op)
            )
            assert all(r == results[0] for r in results)
            assert results[0] == tuple(range(size))

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=9))
    def test_allreduce_matches_serial_fold(self, values):
        size = len(values)
        results = run_spmd(
            size, lambda c: collectives.allreduce(c, values[c.rank], operator.add)
        )
        assert results == [sum(values)] * size
