"""Nonblocking point-to-point (isend/irecv/probe/Request)."""

import pytest

from repro.simmpi import run_spmd
from repro.simmpi.errors import SimMPIError


class TestIsendIrecv:
    def test_basic_overlap(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend({"payload": 42}, dest=1, tag=5)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=5)
            return req.wait()

        assert run_spmd(2, prog)[1] == {"payload": 42}

    def test_test_polls_without_blocking(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()  # let rank 1 poll first
                comm.send("late", dest=1)
                comm.barrier()
                return None
            req = comm.irecv(source=0)
            done_before, _ = req.test()
            comm.barrier()
            comm.barrier()
            done_after, value = req.test()
            return done_before, done_after, value

        _none, (before, after, value) = run_spmd(2, prog)
        assert before is False
        assert after is True
        assert value == "late"

    def test_wait_after_test_completion_returns_value(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, dest=1)
                comm.barrier()
                return None
            comm.barrier()  # message is in flight (delivered) by now
            req = comm.irecv(source=0)
            done, value = req.test()
            assert done
            return req.wait()  # idempotent

        assert run_spmd(2, prog)[1] == 7

    def test_multiple_outstanding_requests(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.isend(i * i, dest=1, tag=i)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(5)]
            return [r.wait() for r in reversed(reqs)]

        assert run_spmd(2, prog)[1] == [16, 9, 4, 1, 0]

    def test_probe(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=9)
                comm.barrier()
                return None
            comm.barrier()
            has_tag9 = comm.probe(source=0, tag=9)
            has_tag8 = comm.probe(source=0, tag=8)
            comm.recv(source=0, tag=9)
            empty_after = comm.probe(source=0, tag=9)
            return has_tag9, has_tag8, empty_after

        assert run_spmd(2, prog)[1] == (True, False, False)

    def test_out_of_range_sources(self):
        def prog(comm):
            comm.irecv(source=7)

        with pytest.raises(Exception):
            run_spmd(2, prog)

    def test_isend_request_completes_immediately(self):
        def prog(comm):
            req = comm.isend(1, dest=comm.rank)
            done, _ = req.test()
            comm.recv(source=comm.rank)
            return done

        assert run_spmd(1, prog) == [True]
