"""Out-of-band result-blob transport (stage/open/sweep).

The process backend's merge-back protocol ships each rank's packed cluster
delta through a staged shared-memory segment instead of pickling it
through the result queue; the parent reads it back by mapping the
``/dev/shm`` file directly (never via ``SharedMemory``, which would spawn
a parent-side resource tracker that later forks inherit — see
``ProcessWorld.open_result_blob``).  These tests drive the protocol the
way :func:`repro.core.runner.run_collective` does: staging happens in
forked children, open/sweep in the parent.
"""

import glob
import os

from repro.simmpi.procworld import ProcessWorld
from repro.simmpi.world import World


def _stage(comm, payloads):
    blob = payloads[comm.rank]
    return comm.world.stage_result_blob(comm.rank, blob)


def _shm_files(world):
    return glob.glob(os.path.join("/dev/shm", world._result_blob_prefix() + "*"))


class TestThreadDefaults:
    def test_blob_is_its_own_handle(self):
        world = World(2, timeout=30)
        payloads = [b"alpha", b"beta-" * 100]
        handles = world.run(_stage, payloads)
        for rank, handle in enumerate(handles):
            with world.open_result_blob(handle) as buf:
                assert bytes(buf) == payloads[rank]
        world.sweep_result_blobs()  # no-op, must not raise


class TestProcessTransport:
    def test_child_staged_blobs_read_back_and_reclaimed(self):
        world = ProcessWorld(3, timeout=60)
        payloads = [bytes([rank]) * (1000 + rank) for rank in range(3)]
        handles = world.run(_stage, payloads)
        assert _shm_files(world), "blobs should be parked in /dev/shm"
        for rank, handle in enumerate(handles):
            kind = handle[0]
            assert kind in ("shm", "inline")
            with world.open_result_blob(handle) as buf:
                assert bytes(buf) == payloads[rank]
        # Opening is consuming: every staged segment is gone afterwards.
        assert _shm_files(world) == []

    def test_empty_blob(self):
        world = ProcessWorld(2, timeout=60)
        handles = world.run(_stage, [b"", b"x"])
        with world.open_result_blob(handles[0]) as buf:
            assert bytes(buf) == b""
        with world.open_result_blob(handles[1]) as buf:
            assert bytes(buf) == b"x"
        assert _shm_files(world) == []

    def test_sweep_reclaims_unopened_blobs(self):
        """Failure paths (a rank dies after staging) must not leak
        segments: the runner's finally and the next run() both sweep."""
        world = ProcessWorld(2, timeout=60)
        world.run(_stage, [b"left", b"behind"])
        assert len(_shm_files(world)) == 2
        world.sweep_result_blobs()
        assert _shm_files(world) == []

    def test_next_run_sweeps_previous_leftovers(self):
        world = ProcessWorld(2, timeout=60)
        world.run(_stage, [b"a" * 64, b"b" * 64])
        assert len(_shm_files(world)) == 2
        world.run(lambda comm: comm.rank)
        assert _shm_files(world) == []

    def test_inline_fallback_roundtrip(self):
        """When segment creation fails the handle degrades to inline bytes;
        the parent-side open must accept that shape unchanged."""
        world = ProcessWorld(2, timeout=60)
        with world.open_result_blob(("inline", b"fallback-bytes")) as buf:
            assert bytes(buf) == b"fallback-bytes"
