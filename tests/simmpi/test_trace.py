"""Unit tests for per-rank communication accounting."""

import pickle

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simmpi.trace import (
    TRACE_ENV,
    PhaseCounters,
    Trace,
    nbytes_of,
    resolve_trace_level,
)


class TestNbytesOf:
    def test_bytes_exact(self):
        assert nbytes_of(b"abcd") == 4
        assert nbytes_of(bytearray(10)) == 10
        assert nbytes_of(memoryview(b"xyz")) == 3

    def test_none_is_one_byte(self):
        assert nbytes_of(None) == 1

    def test_ndarray_uses_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert nbytes_of(arr) == 800

    def test_scalars(self):
        assert nbytes_of(5) == 8
        assert nbytes_of(3.14) == 8
        assert nbytes_of(True) == 1

    def test_string_utf8(self):
        assert nbytes_of("abc") == 3
        assert nbytes_of("é") == 2

    def test_containers_recursive(self):
        assert nbytes_of([1, 2, 3]) == 8 + 24
        assert nbytes_of((b"ab", b"cd")) == 8 + 4
        assert nbytes_of({1: b"xx"}) == 8 + 8 + 2

    def test_self_reporting_object(self):
        class Table:
            def nbytes_estimate(self):
                return 1234

        assert nbytes_of(Table()) == 1234

    def test_fallback_pickles(self):
        class Opaque:
            pass

        assert nbytes_of(Opaque()) > 0

    @given(st.binary(max_size=4096))
    def test_bytes_property(self, data):
        assert nbytes_of(data) == len(data)


class TestTrace:
    def test_records_accumulate_in_default_phase(self):
        t = Trace(rank=0)
        t.record_send(100)
        t.record_recv(50)
        assert t.sent_bytes == 100
        assert t.recv_bytes == 50
        assert t.counters("default").sent_msgs == 1

    def test_phase_scoping(self):
        t = Trace(rank=1)
        with t.phase("reduction"):
            t.record_send(10)
        with t.phase("exchange"):
            t.record_send(20)
        assert t.counters("reduction").sent_bytes == 10
        assert t.counters("exchange").sent_bytes == 20
        assert t.sent_bytes == 30

    def test_nested_phases_restore_outer(self):
        t = Trace()
        with t.phase("outer"):
            with t.phase("inner"):
                t.record_send(1)
            t.record_send(2)
        assert t.counters("inner").sent_bytes == 1
        assert t.counters("outer").sent_bytes == 2

    def test_phase_restored_after_exception(self):
        t = Trace()
        with pytest.raises(RuntimeError):
            with t.phase("failing"):
                raise RuntimeError("boom")
        t.record_send(7)
        assert t.counters("default").sent_bytes == 7

    def test_put_counts_both_sides(self):
        sender, receiver = Trace(rank=0), Trace(rank=1)
        sender.record_put(64)
        receiver.record_put_received(64)
        assert sender.sent_bytes == 64
        assert sender.counters().put_msgs == 1
        assert receiver.recv_bytes == 64

    def test_rounds(self):
        t = Trace()
        t.record_round()
        t.record_round(3)
        assert t.rounds == 4

    def test_total_merges_all_phases(self):
        t = Trace()
        with t.phase("a"):
            t.record_send(5)
            t.record_round()
        with t.phase("b"):
            t.record_recv(6)
        total = t.total()
        assert (total.sent_bytes, total.recv_bytes, total.rounds) == (5, 6, 1)

    def test_get_accounting(self):
        t = Trace()
        t.record_get(128)
        assert t.counters().got_bytes == 128
        assert t.recv_bytes == 128


class TestPhaseNesting:
    def test_stack_depth_three(self):
        t = Trace()
        with t.phase("a"):
            with t.phase("b"):
                with t.phase("c"):
                    t.record_send(1)
                    assert t.active_phase == "c"
                t.record_send(2)
                assert t.active_phase == "b"
            t.record_send(4)
        assert t.counters("c").sent_bytes == 1
        assert t.counters("b").sent_bytes == 2
        assert t.counters("a").sent_bytes == 4
        assert t.active_phase == "default"

    def test_reentering_same_phase_nested(self):
        t = Trace()
        with t.phase("x"):
            with t.phase("x"):
                t.record_send(3)
        assert t.counters("x").sent_bytes == 3
        assert t.active_phase == "default"

    def test_inner_exception_restores_outer(self):
        t = Trace()
        with t.phase("outer"):
            with pytest.raises(RuntimeError):
                with t.phase("inner"):
                    raise RuntimeError("boom")
            assert t.active_phase == "outer"
            t.record_send(9)
        assert t.counters("outer").sent_bytes == 9
        assert t.active_phase == "default"

    def test_phase_seconds_accumulate_per_name(self):
        t = Trace()
        with t.phase("timed"):
            pass
        with t.phase("timed"):
            pass
        assert t.counters("timed").seconds > 0


class TestTraceLevels:
    def test_default_is_phase_level(self):
        t = Trace()
        assert t.level == "phase"
        assert not t.span_enabled

    def test_configure_span(self):
        t = Trace()
        t.configure("span")
        assert t.span_enabled

    def test_configure_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown trace level"):
            Trace().configure("verbose")

    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "span")
        assert resolve_trace_level("phase") == "phase"

    def test_resolve_env_values(self, monkeypatch):
        for raw, expected in (
            ("", None), ("0", None), ("off", None), ("false", None),
            ("phase", "phase"),
            ("1", "span"), ("on", "span"), ("true", "span"),
            ("span", "span"), ("SPAN", "span"),
        ):
            monkeypatch.setenv(TRACE_ENV, raw)
            assert resolve_trace_level() == expected, raw

    def test_resolve_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert resolve_trace_level() is None

    def test_resolve_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "loud")
        with pytest.raises(ValueError, match="invalid"):
            resolve_trace_level()

    def test_resolve_rejects_bad_explicit(self):
        with pytest.raises(ValueError):
            resolve_trace_level("chatty")


class TestSpans:
    def test_disabled_records_nothing(self):
        t = Trace()
        with t.phase("hash"):
            with t.span("inner") as span:
                assert span is None
        t.annotate(x=1)  # no-op
        assert t.spans == []
        assert not t.metrics

    def test_phase_records_span_when_enabled(self):
        t = Trace(rank=3)
        t.configure("span")
        with t.phase("dump"):
            with t.phase("hash"):
                pass
        assert [s.name for s in t.spans] == ["dump", "hash"]
        dump, hashed = t.spans
        assert dump.parent == -1
        assert hashed.parent == 0
        assert hashed.rank == 3
        assert dump.end >= hashed.end >= hashed.start >= dump.start

    def test_span_without_counter_bucketing(self):
        t = Trace()
        t.configure("span")
        with t.phase("exchange"):
            with t.span("shuffle", moved=5) as span:
                t.record_send(11)
                assert span.attrs == {"moved": 5}
        # volumes stayed in the *phase* bucket; the span carries no counters
        assert t.counters("exchange").sent_bytes == 11
        assert "shuffle" not in t.phases
        assert t.spans[1].name == "shuffle"
        assert t.spans[1].parent == 0

    def test_annotate_targets_innermost_open(self):
        t = Trace()
        t.configure("span")
        with t.phase("a"):
            with t.span("b"):
                t.annotate(k=1)
            t.annotate(outer=True)
        names = {s.name: s.attrs for s in t.spans}
        assert names["b"] == {"k": 1}
        assert names["a"] == {"outer": True}

    def test_begin_end_out_of_order_close(self):
        t = Trace()
        t.configure("span")
        outer = t.begin_span("outer")
        t.begin_span("inner")
        t.end_span(outer)  # closes outer even though inner never closed
        idx = t.begin_span("next")
        assert t.spans[idx].parent == -1
        t.end_span(idx)

    def test_exception_closes_phase_span(self):
        t = Trace()
        t.configure("span")
        with pytest.raises(RuntimeError):
            with t.phase("failing"):
                raise RuntimeError("boom")
        assert t.spans[0].closed

    def test_pickle_roundtrip_byte_identical(self):
        t = Trace(rank=2)
        t.configure("span")
        with t.phase("dump"):
            with t.phase("hash"):
                t.record_chunks(4, 1024)
            t.metrics.histogram("chunk_size_bytes").observe(256, 4)
            t.metrics.gauge("dedup_ratio").set(0.25)
            t.metrics.counter("puts").inc(2)
        blob = pickle.dumps(t)
        clone = pickle.loads(blob)
        assert pickle.dumps(clone) == blob
        assert [s.name for s in clone.spans] == ["dump", "hash"]
        assert clone.metrics.histograms["chunk_size_bytes"].count == 4


class TestPhaseCounters:
    def test_merge(self):
        a = PhaseCounters(sent_bytes=1, recv_bytes=2, rounds=3)
        b = PhaseCounters(sent_bytes=10, sent_msgs=1)
        a.merge(b)
        assert a.sent_bytes == 11
        assert a.recv_bytes == 2
        assert a.rounds == 3
        assert a.sent_msgs == 1
