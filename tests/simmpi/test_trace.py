"""Unit tests for per-rank communication accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simmpi.trace import PhaseCounters, Trace, nbytes_of


class TestNbytesOf:
    def test_bytes_exact(self):
        assert nbytes_of(b"abcd") == 4
        assert nbytes_of(bytearray(10)) == 10
        assert nbytes_of(memoryview(b"xyz")) == 3

    def test_none_is_one_byte(self):
        assert nbytes_of(None) == 1

    def test_ndarray_uses_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert nbytes_of(arr) == 800

    def test_scalars(self):
        assert nbytes_of(5) == 8
        assert nbytes_of(3.14) == 8
        assert nbytes_of(True) == 1

    def test_string_utf8(self):
        assert nbytes_of("abc") == 3
        assert nbytes_of("é") == 2

    def test_containers_recursive(self):
        assert nbytes_of([1, 2, 3]) == 8 + 24
        assert nbytes_of((b"ab", b"cd")) == 8 + 4
        assert nbytes_of({1: b"xx"}) == 8 + 8 + 2

    def test_self_reporting_object(self):
        class Table:
            def nbytes_estimate(self):
                return 1234

        assert nbytes_of(Table()) == 1234

    def test_fallback_pickles(self):
        class Opaque:
            pass

        assert nbytes_of(Opaque()) > 0

    @given(st.binary(max_size=4096))
    def test_bytes_property(self, data):
        assert nbytes_of(data) == len(data)


class TestTrace:
    def test_records_accumulate_in_default_phase(self):
        t = Trace(rank=0)
        t.record_send(100)
        t.record_recv(50)
        assert t.sent_bytes == 100
        assert t.recv_bytes == 50
        assert t.counters("default").sent_msgs == 1

    def test_phase_scoping(self):
        t = Trace(rank=1)
        with t.phase("reduction"):
            t.record_send(10)
        with t.phase("exchange"):
            t.record_send(20)
        assert t.counters("reduction").sent_bytes == 10
        assert t.counters("exchange").sent_bytes == 20
        assert t.sent_bytes == 30

    def test_nested_phases_restore_outer(self):
        t = Trace()
        with t.phase("outer"):
            with t.phase("inner"):
                t.record_send(1)
            t.record_send(2)
        assert t.counters("inner").sent_bytes == 1
        assert t.counters("outer").sent_bytes == 2

    def test_phase_restored_after_exception(self):
        t = Trace()
        with pytest.raises(RuntimeError):
            with t.phase("failing"):
                raise RuntimeError("boom")
        t.record_send(7)
        assert t.counters("default").sent_bytes == 7

    def test_put_counts_both_sides(self):
        sender, receiver = Trace(rank=0), Trace(rank=1)
        sender.record_put(64)
        receiver.record_put_received(64)
        assert sender.sent_bytes == 64
        assert sender.counters().put_msgs == 1
        assert receiver.recv_bytes == 64

    def test_rounds(self):
        t = Trace()
        t.record_round()
        t.record_round(3)
        assert t.rounds == 4

    def test_total_merges_all_phases(self):
        t = Trace()
        with t.phase("a"):
            t.record_send(5)
            t.record_round()
        with t.phase("b"):
            t.record_recv(6)
        total = t.total()
        assert (total.sent_bytes, total.recv_bytes, total.rounds) == (5, 6, 1)

    def test_get_accounting(self):
        t = Trace()
        t.record_get(128)
        assert t.counters().got_bytes == 128
        assert t.recv_bytes == 128


class TestPhaseCounters:
    def test_merge(self):
        a = PhaseCounters(sent_bytes=1, recv_bytes=2, rounds=3)
        b = PhaseCounters(sent_bytes=10, sent_msgs=1)
        a.merge(b)
        assert a.sent_bytes == 11
        assert a.recv_bytes == 2
        assert a.rounds == 3
        assert a.sent_msgs == 1
