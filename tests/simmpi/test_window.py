"""One-sided window semantics: creation, puts at offsets, fences, bounds."""

import pytest

from repro.simmpi import Window, World, run_spmd
from repro.simmpi.errors import WindowError


class TestWindowBasics:
    def test_put_lands_at_offset(self):
        def prog(comm):
            win = Window.create(comm, 8 if comm.rank == 0 else 0)
            if comm.rank == 1:
                win.put(b"ABCD", target_rank=0, offset=4)
            win.fence()
            view = win.local_view()
            win.free()
            return view

        results = run_spmd(2, prog)
        assert results[0] == b"\x00\x00\x00\x00ABCD"

    def test_heterogeneous_sizes(self):
        def prog(comm):
            win = Window.create(comm, comm.rank * 3)
            win.fence()
            size = win.nbytes
            win.free()
            return size

        assert run_spmd(4, prog) == [0, 3, 6, 9]

    def test_all_to_one_disjoint_regions(self):
        n = 6

        def prog(comm):
            win = Window.create(comm, n * 2 if comm.rank == 0 else 0)
            win.put(bytes([comm.rank] * 2), target_rank=0, offset=comm.rank * 2)
            win.fence()
            view = win.local_view()
            win.free()
            return view

        results = run_spmd(n, prog)
        assert results[0] == b"".join(bytes([r] * 2) for r in range(n))

    def test_get_reads_remote(self):
        def prog(comm):
            win = Window.create(comm, 4)
            win.put(bytes([comm.rank]) * 4, target_rank=comm.rank, offset=0)
            win.fence()
            peer = (comm.rank + 1) % comm.size
            data = win.get(peer, offset=1, nbytes=2)
            win.fence()
            win.free()
            return data

        results = run_spmd(3, prog)
        assert results == [bytes([1, 1]), bytes([2, 2]), bytes([0, 0])]

    def test_local_filled_counts_bytes(self):
        def prog(comm):
            win = Window.create(comm, 10 if comm.rank == 0 else 0)
            if comm.rank != 0:
                win.put(b"xy", target_rank=0, offset=2 * (comm.rank - 1))
            win.fence()
            filled = win.local_filled()
            win.free()
            return filled

        assert run_spmd(4, prog)[0] == 6


class TestWindowErrors:
    def test_put_past_end_raises(self):
        def prog(comm):
            win = Window.create(comm, 4)
            try:
                win.put(b"12345", target_rank=comm.rank, offset=0)
            finally:
                win.fence()
                win.free()

        with pytest.raises(Exception) as exc_info:
            run_spmd(1, prog)
        assert any(
            isinstance(e, WindowError) for e in exc_info.value.failures.values()
        )

    def test_negative_offset_raises(self):
        def prog(comm):
            win = Window.create(comm, 4)
            try:
                win.put(b"a", target_rank=comm.rank, offset=-1)
            finally:
                win.fence()
                win.free()

        with pytest.raises(Exception):
            run_spmd(1, prog)

    def test_get_out_of_bounds_raises(self):
        def prog(comm):
            win = Window.create(comm, 4)
            win.fence()
            try:
                win.get(comm.rank, offset=2, nbytes=5)
            finally:
                win.free()

        with pytest.raises(Exception):
            run_spmd(1, prog)

    def test_negative_size_raises(self):
        def prog(comm):
            Window.create(comm, -1)

        with pytest.raises(Exception):
            run_spmd(1, prog)


class TestWindowTrace:
    def test_remote_put_charged_to_both(self):
        world = World(2)

        def prog(comm):
            win = Window.create(comm, 16)
            if comm.rank == 0:
                win.put(b"x" * 16, target_rank=1, offset=0)
            win.fence()
            win.free()
            return (comm.trace.sent_bytes, comm.trace.recv_bytes)

        r0, r1 = world.run(prog)
        assert r0[0] == 16
        assert r1[1] == 16

    def test_local_put_not_charged(self):
        world = World(1)

        def prog(comm):
            win = Window.create(comm, 8)
            win.put(b"local", target_rank=0, offset=0)
            win.fence()
            win.free()
            return comm.trace.sent_bytes

        assert world.run(prog) == [0]

    def test_sequential_windows_do_not_collide(self):
        def prog(comm):
            out = []
            for round_no in range(3):
                win = Window.create(comm, 1)
                peer = (comm.rank + 1) % comm.size
                win.put(bytes([round_no]), target_rank=peer, offset=0)
                win.fence()
                out.append(win.local_view())
                win.free()
            return out

        results = run_spmd(2, prog)
        assert results[0] == [b"\x00", b"\x01", b"\x02"]


class TestPutMany:
    def test_single_region_equals_put(self):
        def prog(comm):
            win = Window.create(comm, 8 if comm.rank == 0 else 0)
            if comm.rank == 1:
                win.put_many([(4, b"ABCD")], target_rank=0)
            win.fence()
            view = win.local_view()
            win.free()
            return view

        results = run_spmd(2, prog)
        assert results[0] == b"\x00\x00\x00\x00ABCD"

    def test_multiple_disjoint_regions(self):
        def prog(comm):
            win = Window.create(comm, 10 if comm.rank == 0 else 0)
            if comm.rank == 1:
                win.put_many([(0, b"AA"), (6, b"BB"), (3, b"C")], target_rank=0)
            win.fence()
            view = win.local_view()
            win.free()
            return view

        results = run_spmd(2, prog)
        assert results[0] == b"AA\x00C\x00\x00BB\x00\x00"

    def test_traced_as_one_message_of_total_bytes(self):
        world = World(2)

        def prog(comm):
            win = Window.create(comm, 8)
            peer = (comm.rank + 1) % comm.size
            win.put_many([(0, b"abc"), (4, b"de")], target_rank=peer)
            win.fence()
            win.free()

        world.run(prog)
        for rank in range(2):
            trace = world.comms[rank].trace.total()
            assert trace.put_msgs == 1
            assert trace.put_bytes == 5
            assert trace.recv_msgs == 1
            assert trace.recv_bytes == 5

    def test_out_of_bounds_rejected_before_any_write(self):
        def prog(comm):
            win = Window.create(comm, 4 if comm.rank == 0 else 0)
            err = None
            if comm.rank == 1:
                try:
                    win.put_many([(0, b"ok"), (3, b"overflow")], target_rank=0)
                except WindowError as exc:
                    err = exc
            win.fence()
            view = win.local_view()
            win.free()
            return err, view

        results = run_spmd(2, prog)
        assert results[1][0] is not None
        # The in-bounds part must not have been applied either.
        assert results[0][1] == b"\x00\x00\x00\x00"

    def test_empty_parts_are_a_traced_noop(self):
        world = World(2)

        def prog(comm):
            win = Window.create(comm, 4)
            peer = (comm.rank + 1) % comm.size
            win.put_many([], target_rank=peer)
            win.fence()
            win.free()

        world.run(prog)
        assert world.comms[0].trace.total().put_msgs == 0
