"""Compression in the dump path: roundtrips, storage savings, accounting."""

import pytest

from repro.core import DumpConfig, Strategy, dump_output, restore_dataset
from repro.core.collective_restore import load_input
from repro.simmpi import World
from repro.storage import Cluster

from tests.conftest import make_rank_dataset

CS = 64


def run_dump(n, compress, strategy=Strategy.COLL_DEDUP, k=3):
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=4096, compress=compress)
    cluster = Cluster(n, dedup=(strategy is not Strategy.NO_DEDUP))
    reports = World(n).run(
        lambda comm: dump_output(comm, make_rank_dataset(comm.rank), cfg, cluster)
    )
    return reports, cluster, cfg


class TestConfig:
    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            DumpConfig(compress="paq9")

    def test_wire_capacity_accounts_marker(self):
        assert DumpConfig(chunk_size=64).wire_payload_capacity == 64
        assert DumpConfig(chunk_size=64, compress="rle").wire_payload_capacity == 65

    def test_simulator_rejects_compression(self):
        from repro.core.local_dedup import index_from_fingerprints
        from repro.sim import simulate_dump

        idx = index_from_fingerprints([b"x" * 20], 64)
        with pytest.raises(ValueError, match="threaded"):
            simulate_dump([idx], DumpConfig(compress="zlib-1"))


class TestCompressedDump:
    @pytest.mark.parametrize("codec", ["zlib-1", "zlib-6", "rle", "none"])
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_roundtrip(self, codec, strategy):
        n = 5
        _reports, cluster, _cfg = run_dump(n, codec, strategy=strategy)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)

    def test_roundtrip_after_failures(self):
        n = 6
        _reports, cluster, _cfg = run_dump(n, "zlib-1", k=3)
        cluster.fail_node(0)
        cluster.fail_node(3)
        for rank in range(n):
            restored, _ = restore_dataset(cluster, rank)
            assert restored == make_rank_dataset(rank)

    def test_collective_restore_roundtrip(self):
        n = 5
        _reports, cluster, cfg = run_dump(n, "rle")
        results = World(n).run(lambda comm: load_input(comm, cluster, cfg))
        for rank, (dataset, _rep) in enumerate(results):
            assert dataset == make_rank_dataset(rank)

    def test_compression_shrinks_traffic_and_storage(self):
        """The test datasets carry zero pages and constant runs: compressed
        dumps must move and store fewer bytes."""
        n = 6
        raw_reports, raw_cluster, _ = run_dump(n, None)
        zip_reports, zip_cluster, _ = run_dump(n, "zlib-1")
        assert sum(r.sent_bytes for r in zip_reports) < sum(
            r.sent_bytes for r in raw_reports
        )
        assert zip_cluster.total_physical_bytes < raw_cluster.total_physical_bytes

    def test_fingerprints_unchanged_by_compression(self):
        """Dedup identity stays content-based: the same chunks dedup the
        same way whether or not frames are compressed."""
        n = 6
        raw_reports, _c1, _ = run_dump(n, None)
        zip_reports, _c2, _ = run_dump(n, "zlib-6")
        for raw, comp in zip(raw_reports, zip_reports):
            assert raw.sent_chunks == comp.sent_chunks
            assert raw.stored_chunks == comp.stored_chunks
            assert raw.discarded_chunks == comp.discarded_chunks

    def test_manifest_flags_compression(self):
        n = 4
        _r, cluster, _cfg = run_dump(n, "zlib-1")
        assert cluster.nodes[0].get_manifest(0, 0).compressed is True
        _r2, cluster2, _cfg2 = run_dump(n, None)
        assert cluster2.nodes[0].get_manifest(0, 0).compressed is False


class TestCompressionStats:
    def test_measure_on_workload(self):
        from repro.compress import get_codec, measure_codec

        ds = make_rank_dataset(0)
        stats = measure_codec(get_codec("zlib-1"), ds.chunks(CS))
        assert stats.chunks == ds.chunk_count(CS)
        assert stats.raw_bytes == ds.nbytes
        assert 0.0 < stats.ratio < 1.0  # zero pages compress

    def test_incompressible_counted(self):
        from repro.compress import get_codec, measure_codec

        import hashlib

        noise = [hashlib.blake2b(bytes([i])).digest() for i in range(10)]
        stats = measure_codec(get_codec("zlib-6"), noise)
        assert stats.incompressible_chunks == 10
        assert stats.ratio > 1.0  # marker byte overhead

    def test_limit(self):
        from repro.compress import get_codec, measure_codec

        stats = measure_codec(get_codec("rle"), (b"\x00" * 10 for _ in range(100)), limit=7)
        assert stats.chunks == 7
