"""Chunk codecs: roundtrips, raw fallback, routing."""

import pytest
from hypothesis import given, strategies as st

from repro.compress.codecs import (
    available_codecs,
    decode_auto,
    get_codec,
    _rle_decode,
    _rle_encode,
)


class TestRegistry:
    def test_available(self):
        assert set(available_codecs()) == {"none", "zlib-1", "zlib-6", "rle"}

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("zstd")


class TestRoundtrips:
    @pytest.mark.parametrize("name", ["none", "zlib-1", "zlib-6", "rle"])
    @pytest.mark.parametrize(
        "payload",
        [b"", b"a", b"\x00" * 4096, bytes(range(256)) * 16, b"abab" * 1000],
    )
    def test_roundtrip(self, name, payload):
        codec = get_codec(name)
        assert codec.decode(codec.encode(payload)) == payload

    @pytest.mark.parametrize("name", available_codecs())
    @given(st.binary(max_size=2048))
    def test_roundtrip_property(self, name, payload):
        codec = get_codec(name)
        assert decode_auto(codec.encode(payload)) == payload

    def test_zero_page_compresses_hard(self):
        codec = get_codec("zlib-1")
        assert codec.ratio(b"\x00" * 4096) < 0.02

    def test_rle_zero_page(self):
        codec = get_codec("rle")
        # 4096 zeros -> 16 runs of 256 -> 32 bytes + marker.
        assert len(codec.encode(b"\x00" * 4096)) == 33

    def test_incompressible_stored_raw(self):
        import hashlib

        noise = b"".join(
            hashlib.blake2b(i.to_bytes(4, "little")).digest() for i in range(64)
        )
        for name in available_codecs():
            frame = get_codec(name).encode(noise)
            assert len(frame) == len(noise) + 1  # raw marker fallback
            assert decode_auto(frame) == noise

    def test_decode_errors(self):
        with pytest.raises(ValueError):
            decode_auto(b"")
        with pytest.raises(ValueError):
            decode_auto(bytes([99]) + b"body")


class TestRLE:
    def test_encode_pairs(self):
        assert _rle_encode(b"aaab") == bytes([2, ord("a"), 0, ord("b")])

    def test_long_run_split(self):
        encoded = _rle_encode(b"\x00" * 600)
        assert _rle_decode(encoded) == b"\x00" * 600
        assert len(encoded) == 6  # runs of 256, 256, 88

    def test_corrupt_stream(self):
        with pytest.raises(ValueError):
            _rle_decode(b"\x01")

    @given(st.binary(max_size=1000))
    def test_rle_roundtrip(self, payload):
        assert _rle_decode(_rle_encode(payload)) == payload
