"""Flow-level dump pricing vs the analytic model (cross-validation)."""

import pytest

from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.netsim.cost_model import dump_time
from repro.netsim.event_model import flow_dump_time
from repro.netsim.machine import MachineProfile
from repro.sim import simulate_dump

CS = 256
MACHINE = MachineProfile(ranks_per_node=4, node_net_bandwidth=1e8,
                         node_storage_bandwidth=1e8, hash_bandwidth=4e8)


def result_for(strategy, n=16, k=3, **kwargs):
    w = SyntheticWorkload(chunks_per_rank=40, chunk_size=CS,
                          frac_global=0.3, frac_zero=0.1, **kwargs)
    indices = w.build_indices(n, chunk_size=CS)
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=100_000)
    return simulate_dump(indices, cfg)


class TestCrossValidation:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_models_agree_within_bounds(self, strategy):
        """The flow model can only be <= the analytic per-phase bound on
        writes, and within a small factor on the exchange (it relaxes the
        max(tx, rx) assumption but adds cross-flow contention)."""
        result = result_for(strategy)
        analytic = dump_time(result, MACHINE, volume_scale=1000)
        flow = flow_dump_time(result, MACHINE, volume_scale=1000)
        assert flow.write == pytest.approx(analytic.write, rel=1e-6)
        assert flow.hash == analytic.hash
        if analytic.exchange:
            assert 0.5 * analytic.exchange <= flow.exchange <= 3.0 * analytic.exchange

    def test_strategy_ordering_preserved(self):
        totals = {}
        for strategy in Strategy:
            result = result_for(strategy)
            totals[strategy] = flow_dump_time(result, MACHINE, volume_scale=5e4).total
        assert totals[Strategy.COLL_DEDUP] < totals[Strategy.LOCAL_DEDUP]
        assert totals[Strategy.LOCAL_DEDUP] < totals[Strategy.NO_DEDUP]

    def test_reduction_priced_only_for_coll(self):
        for strategy in (Strategy.NO_DEDUP, Strategy.LOCAL_DEDUP):
            flow = flow_dump_time(result_for(strategy), MACHINE)
            assert flow.reduction == 0.0
        assert flow_dump_time(result_for(Strategy.COLL_DEDUP), MACHINE).reduction > 0

    def test_single_rank(self):
        result = result_for(Strategy.COLL_DEDUP, n=1, k=1)
        flow = flow_dump_time(result, MACHINE)
        assert flow.exchange == 0.0
        assert flow.write > 0.0

    def test_volume_scale_validation(self):
        with pytest.raises(ValueError):
            flow_dump_time(result_for(Strategy.NO_DEDUP), MACHINE, volume_scale=0)

    def test_intra_node_traffic_free(self):
        """With everyone on one node there is no NIC traffic at all."""
        machine = MachineProfile(ranks_per_node=16, node_net_bandwidth=1e8,
                                 node_storage_bandwidth=1e8)
        result = result_for(Strategy.NO_DEDUP, n=8)
        flow = flow_dump_time(result, machine)
        put_part = sum(r.sent_chunks for r in result.reports) * machine.put_overhead
        assert flow.exchange == pytest.approx(put_part)

    def test_skewed_sender_finishes_last(self):
        """A single heavy sender serialises on its TX link; the flow model
        must price at least its solo drain time."""
        class Skewed(SyntheticWorkload):
            def rank_segments(self, rank, n_ranks):
                segs = super().rank_segments(rank, n_ranks)
                if rank == 0:
                    import numpy as np

                    segs.append((("heavy", 0), np.random.RandomState(0).bytes(CS * 200)))
                return segs

        w = Skewed(chunks_per_rank=8, chunk_size=CS, frac_global=0.0,
                   frac_zero=0.0, frac_local_dup=0.0)
        indices = w.build_indices(8, chunk_size=CS)
        cfg = DumpConfig(replication_factor=3, chunk_size=CS,
                         strategy=Strategy.LOCAL_DEDUP, f_threshold=10_000)
        result = simulate_dump(indices, cfg)
        machine = MachineProfile(ranks_per_node=1, node_net_bandwidth=1e8,
                                 node_storage_bandwidth=1e9)
        flow = flow_dump_time(result, machine)
        solo = result.reports[0].sent_bytes / machine.node_net_bandwidth
        assert flow.exchange >= solo * 0.99
