"""Machine profiles."""

import pytest

from repro.netsim.machine import MachineProfile


class TestMachineProfile:
    def test_shamrock_matches_paper_testbed(self):
        m = MachineProfile.shamrock()
        assert m.ranks_per_node == 12  # 408 procs on 34 nodes
        assert m.node_net_bandwidth == pytest.approx(117e6)  # GbE
        assert m.node_storage_bandwidth == pytest.approx(100e6)  # local HDD

    def test_rank_to_node_cyclic_default(self):
        """Cyclic placement is the default: the paper requires replicas on
        'K-1 other remote nodes', which the naive i+1..i+K-1 partners only
        deliver when consecutive ranks sit on different nodes."""
        m = MachineProfile(ranks_per_node=4)
        assert m.rank_to_node(10) == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]
        assert m.n_nodes(10) == 3
        assert m.n_nodes(8) == 2

    def test_rank_to_node_block_mapping(self):
        m = MachineProfile(ranks_per_node=4, placement="block")
        assert m.rank_to_node(10) == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_placement_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            MachineProfile(placement="random")

    def test_with_overrides(self):
        m = MachineProfile.shamrock().with_(node_net_bandwidth=1e9)
        assert m.node_net_bandwidth == 1e9
        assert m.ranks_per_node == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ranks_per_node": 0},
            {"node_net_bandwidth": 0},
            {"node_storage_bandwidth": -1},
            {"hash_bandwidth": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MachineProfile(**kwargs)

    def test_flash_profile_is_faster(self):
        slow, fast = MachineProfile.shamrock(), MachineProfile.flash_cluster()
        assert fast.node_net_bandwidth > slow.node_net_bandwidth
        assert fast.node_storage_bandwidth > slow.node_storage_bandwidth
