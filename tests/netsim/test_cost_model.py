"""Cost model: phase pricing, scaling laws, strategy-dependent charges."""

import pytest

from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.netsim.cost_model import dump_time, reduction_cap_bytes
from repro.netsim.machine import MachineProfile
from repro.sim import simulate_dump

CS = 256


def result_for(strategy, n=8, k=3, **workload_kwargs):
    w = SyntheticWorkload(chunks_per_rank=40, chunk_size=CS, **workload_kwargs)
    indices = w.build_indices(n, chunk_size=CS)
    cfg = DumpConfig(replication_factor=k, chunk_size=CS, strategy=strategy,
                     f_threshold=100_000)
    return simulate_dump(indices, cfg)


MACHINE = MachineProfile(ranks_per_node=2, node_net_bandwidth=1e8,
                         node_storage_bandwidth=1e8, hash_bandwidth=4e8)


class TestPhaseCharges:
    def test_no_dedup_pays_no_hash_or_reduction(self):
        bd = dump_time(result_for(Strategy.NO_DEDUP), MACHINE)
        assert bd.hash == 0.0
        assert bd.reduction == 0.0
        assert bd.exchange > 0.0
        assert bd.write > 0.0

    def test_local_dedup_pays_hash_not_reduction(self):
        bd = dump_time(result_for(Strategy.LOCAL_DEDUP), MACHINE)
        assert bd.hash > 0.0
        assert bd.reduction == 0.0

    def test_coll_dedup_pays_both(self):
        bd = dump_time(result_for(Strategy.COLL_DEDUP), MACHINE)
        assert bd.hash > 0.0
        assert bd.reduction > 0.0
        assert bd.dedup_overhead == pytest.approx(bd.hash + bd.reduction)

    def test_total_is_sum_of_phases(self):
        bd = dump_time(result_for(Strategy.COLL_DEDUP), MACHINE)
        assert bd.total == pytest.approx(
            bd.hash + bd.reduction + bd.allgather + bd.exchange + bd.write
        )

    def test_single_rank_no_communication(self):
        bd = dump_time(result_for(Strategy.COLL_DEDUP, n=1, k=1), MACHINE)
        assert bd.reduction == 0.0
        assert bd.allgather == 0.0
        assert bd.exchange == 0.0
        assert bd.write > 0.0


class TestScalingLaws:
    def test_volume_scale_is_linear_in_data_phases(self):
        result = result_for(Strategy.NO_DEDUP)
        bd1 = dump_time(result, MACHINE, volume_scale=1.0)
        bd2 = dump_time(result, MACHINE, volume_scale=2.0)
        assert bd2.exchange == pytest.approx(2 * (bd1.exchange - _put_part(result)) + _put_part(result))
        assert bd2.write == pytest.approx(2 * bd1.write)

    def test_volume_scale_validation(self):
        with pytest.raises(ValueError):
            dump_time(result_for(Strategy.NO_DEDUP), MACHINE, volume_scale=0)

    def test_more_replication_costs_more(self):
        times = [
            dump_time(result_for(Strategy.NO_DEDUP, k=k), MACHINE).total
            for k in (1, 2, 3, 4)
        ]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_strategy_ordering_with_redundancy(self):
        """With heavy natural redundancy the paper's ordering must emerge."""
        kwargs = dict(frac_global=0.5, frac_zero=0.2, frac_local_dup=0.2)
        totals = {
            s: dump_time(result_for(s, **kwargs), MACHINE).total for s in Strategy
        }
        assert totals[Strategy.COLL_DEDUP] < totals[Strategy.LOCAL_DEDUP]
        assert totals[Strategy.LOCAL_DEDUP] < totals[Strategy.NO_DEDUP]

    def test_reduction_capped_by_f_threshold(self):
        """Pricing the reduction beyond F entries per table would violate
        the bounded-complexity design; the cap must bind."""
        result = result_for(Strategy.COLL_DEDUP)
        small_cap = dump_time(result, MACHINE, volume_scale=1e6)
        cap = reduction_cap_bytes(100_000, 3)
        rounds = len(result.reduction_level_nbytes)
        bound = rounds * (
            MACHINE.network_latency + cap * 2 / MACHINE.node_net_bandwidth
        )
        assert small_cap.reduction <= bound * 1.01

    def test_faster_machine_is_faster(self):
        result = result_for(Strategy.COLL_DEDUP)
        slow = dump_time(result, MachineProfile.shamrock(), volume_scale=1000)
        fast = dump_time(result, MachineProfile.flash_cluster(), volume_scale=1000)
        assert fast.total < slow.total


class TestBreakdownHelpers:
    def test_scaled(self):
        from repro.netsim.cost_model import DumpTimeBreakdown

        bd = DumpTimeBreakdown(hash=1, reduction=2, allgather=3, exchange=4, write=5)
        half = bd.scaled(0.5)
        assert half.total == pytest.approx(7.5)


def _put_part(result):
    """Per-put CPU overhead component of the exchange phase (not volume-
    scaled), for the busiest node."""
    per_node = {}
    for r in result.reports:
        node = r.rank // MACHINE.ranks_per_node
        per_node[node] = per_node.get(node, 0) + r.sent_chunks
    return max(per_node.values()) * MACHINE.put_overhead
