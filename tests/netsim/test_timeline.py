"""Application timelines: baselines and completion."""

import pytest

from repro.netsim.cost_model import DumpTimeBreakdown
from repro.netsim.timeline import AppTimeline, completion_time, execution_increase


class TestBaselines:
    def test_hpccg_table1_points(self):
        tl = AppTimeline.hpccg()
        assert tl.baseline(1) == 82.0
        assert tl.baseline(64) == 152.0
        assert tl.baseline(196) == 186.0
        assert tl.baseline(408) == 279.0

    def test_cm1_table1_points(self):
        tl = AppTimeline.cm1()
        assert tl.baseline(12) == 178.0
        assert tl.baseline(408) == 382.0

    def test_interpolation_monotone(self):
        tl = AppTimeline.hpccg()
        previous = 0.0
        for n in (1, 8, 32, 64, 100, 196, 300, 408):
            value = tl.baseline(n)
            assert value >= previous
            previous = value

    def test_extrapolation_clamps(self):
        tl = AppTimeline.hpccg()
        assert tl.baseline(1000) == 279.0
        assert tl.baseline(1) == 82.0

    def test_checkpoint_counts_match_paper(self):
        assert AppTimeline.hpccg().checkpoints_per_run == 1  # iter 100 of 127
        assert AppTimeline.cm1().checkpoints_per_run == 2  # steps 30, 60 of 70


class TestCompletion:
    def test_completion_adds_dump_per_checkpoint(self):
        dump = DumpTimeBreakdown(exchange=10.0, write=5.0)
        assert completion_time(AppTimeline.hpccg(), 408, dump) == pytest.approx(294.0)
        assert completion_time(AppTimeline.cm1(), 408, dump) == pytest.approx(412.0)

    def test_execution_increase(self):
        dump = DumpTimeBreakdown(exchange=7.0)
        assert execution_increase(AppTimeline.cm1(), dump) == pytest.approx(14.0)
        assert execution_increase(AppTimeline.hpccg(), dump) == pytest.approx(7.0)
