"""Max-min fair flow simulation primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.flows import Flow, max_min_rates, simulate_flows


class TestMaxMinRates:
    def test_single_flow_gets_full_capacity(self):
        flows = [Flow(links=("a",), nbytes=100)]
        assert max_min_rates(flows, {"a": 10.0}) == [10.0]

    def test_two_flows_share_equally(self):
        flows = [Flow(links=("a",), nbytes=1), Flow(links=("a",), nbytes=1)]
        assert max_min_rates(flows, {"a": 10.0}) == [5.0, 5.0]

    def test_bottleneck_frees_capacity_elsewhere(self):
        """Flow 1 crosses the narrow link; flow 2 gets the leftovers of the
        wide link (the defining max-min property)."""
        flows = [
            Flow(links=("narrow", "wide"), nbytes=1),
            Flow(links=("wide",), nbytes=1),
        ]
        rates = max_min_rates(flows, {"narrow": 2.0, "wide": 10.0})
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_two_link_flow_constrained_by_min(self):
        flows = [Flow(links=("tx", "rx"), nbytes=1)]
        rates = max_min_rates(flows, {"tx": 3.0, "rx": 7.0})
        assert rates[0] == pytest.approx(3.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            max_min_rates([Flow(links=("a",), nbytes=1)], {"a": 0.0})

    @given(
        st.lists(st.integers(1, 3), min_size=1, max_size=8),
        st.floats(1.0, 100.0),
    )
    @settings(max_examples=30)
    def test_no_link_oversubscribed(self, flow_links, cap):
        flows = [Flow(links=tuple(range(links)), nbytes=1) for links in flow_links]
        caps = {link: cap for link in range(3)}
        rates = max_min_rates(flows, caps)
        for link in caps:
            used = sum(r for f, r in zip(flows, rates) if link in f.links)
            assert used <= cap * (1 + 1e-9)
        assert all(r > 0 for r in rates)


class TestSimulateFlows:
    def test_single_flow_time(self):
        flows = [Flow(links=("a",), nbytes=100)]
        assert simulate_flows(flows, {"a": 10.0}) == pytest.approx(10.0)
        assert flows[0].finish_time == pytest.approx(10.0)

    def test_shared_then_solo(self):
        """Two flows share; when the short one drains, the long one speeds
        up: 10+10 bytes at cap 2 -> short done at t=10, long at t=15."""
        flows = [
            Flow(links=("a",), nbytes=10, name="short"),
            Flow(links=("a",), nbytes=20, name="long"),
        ]
        total = simulate_flows(flows, {"a": 2.0})
        assert flows[0].finish_time == pytest.approx(10.0)
        assert flows[1].finish_time == pytest.approx(15.0)
        assert total == pytest.approx(15.0)

    def test_empty(self):
        assert simulate_flows([], {}) == 0.0

    def test_zero_byte_flow(self):
        flows = [Flow(links=("a",), nbytes=0)]
        assert simulate_flows(flows, {"a": 1.0}) == 0.0

    def test_latency_added(self):
        flows = [Flow(links=("a",), nbytes=10)]
        assert simulate_flows(flows, {"a": 10.0}, latency=0.5) == pytest.approx(1.5)

    def test_disjoint_links_run_in_parallel(self):
        flows = [
            Flow(links=("a",), nbytes=100),
            Flow(links=("b",), nbytes=100),
        ]
        assert simulate_flows(flows, {"a": 10.0, "b": 10.0}) == pytest.approx(10.0)

    @given(st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_conservation_property(self, sizes):
        """Total time >= total bytes / capacity (work conservation) and
        <= serial time."""
        flows = [Flow(links=("a",), nbytes=s) for s in sizes]
        t = simulate_flows(flows, {"a": 7.0})
        assert t == pytest.approx(sum(sizes) / 7.0)


class TestReductionRoundPairs:
    def test_power_of_two(self):
        from repro.netsim.event_model import reduction_round_pairs

        rounds = reduction_round_pairs(8)
        assert len(rounds) == 3
        assert rounds[0] == [(0, 1), (2, 3), (4, 5), (6, 7)]
        for pairs in rounds:
            flat = [r for pair in pairs for r in pair]
            assert len(set(flat)) == len(flat)  # disjoint pairs per round

    def test_non_power_of_two_has_fold_and_return(self):
        from repro.netsim.event_model import reduction_round_pairs

        rounds = reduction_round_pairs(6)
        assert len(rounds) == 1 + 2 + 1  # fold + log2(4) + return
        assert rounds[0] == [(1, 0), (3, 2)]
        assert rounds[-1] == [(0, 1), (2, 3)]

    def test_trivial_worlds(self):
        from repro.netsim.event_model import reduction_round_pairs

        assert reduction_round_pairs(1) == []
        assert reduction_round_pairs(2) == [[(0, 1)]]
