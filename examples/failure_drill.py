#!/usr/bin/env python
"""Failure drill: how many node failures can each replication factor take?

Dumps the same synthetic workload at K = 1..4, then sweeps the number of
simultaneously failed nodes, auditing recoverability of every rank's
dataset after each drill.  Demonstrates the library's core guarantee —
K replicas survive any K-1 failures — and shows it breaking exactly at K
failures (when the victims align with a chunk's replica set).

Run:  python examples/failure_drill.py
"""

from repro import Cluster, DumpConfig, World, dump_output
from repro.analysis.tables import format_table
from repro.apps.synthetic import SyntheticWorkload
from repro.storage import FailureInjector

N_RANKS = 12
DRILLS_PER_SETTING = 20


def dump_with_k(workload, k):
    cluster = Cluster(N_RANKS)
    config = DumpConfig(replication_factor=k, chunk_size=workload.chunk_size,
                        f_threshold=1 << 17)

    def program(comm):
        return dump_output(
            comm, workload.build_dataset(comm.rank, N_RANKS), config, cluster
        )

    World(N_RANKS).run(program)
    return cluster


def drill(cluster, n_failures, seed):
    injector = FailureInjector(cluster, seed=seed)
    injector.fail_random_nodes(n_failures)
    report = injector.audit(dump_id=0)
    cluster.revive_all()
    return report.all_recoverable


def main() -> None:
    workload = SyntheticWorkload(
        chunks_per_rank=64, chunk_size=1024,
        frac_global=0.3, frac_zero=0.1, frac_local_dup=0.2,
    )
    rows = []
    for k in (1, 2, 3, 4):
        cluster = dump_with_k(workload, k)
        row = [f"K={k}"]
        for n_failures in (1, 2, 3, 4):
            survived = sum(
                drill(cluster, n_failures, seed)
                for seed in range(DRILLS_PER_SETTING)
            )
            row.append(f"{survived}/{DRILLS_PER_SETTING}")
        rows.append(row)

    print(f"Recoverable drills out of {DRILLS_PER_SETTING} "
          f"({N_RANKS} ranks, random node failures):")
    print(format_table(
        ["replication", "1 failure", "2 failures", "3 failures", "4 failures"],
        rows,
    ))
    print("\nEverything on or below the diagonal (failures < K) survives by "
          "construction; above it, survival depends on whether the victims "
          "happen to cover some chunk's whole replica set.")


if __name__ == "__main__":
    main()
