#!/usr/bin/env python
"""CM1 hurricane: weak-scaled stencil simulation with interval checkpoints.

Sixteen ranks (4x4 grid) integrate a vortex for 70 steps, checkpointing
every 30 — the paper's CM1 configuration, scaled down.  Only the ranks the
storm touches carry unique data; calm subdomains are exact-zero
perturbations whose pages deduplicate everywhere, and the base-state
tables are identical on every rank.  The example shows how much of each
checkpoint each strategy would move, then restarts mid-run after failures.

Run:  python examples/hurricane_cm1.py
"""

import numpy as np

from repro import Cluster, DumpConfig, Strategy, World
from repro.analysis.tables import format_table, human_bytes
from repro.apps.cm1 import CM1, CM1RankModel
from repro.ftrt import CheckpointRuntime
from repro.sim import compute_metrics, simulate_dump

N_RANKS = 16
K = 3
NX, NY, NZ = 16, 16, 6


def build_app() -> CM1:
    return CM1(nx=NX, ny=NY, nz=NZ, n_steps=30, vortex_radius_frac=0.2)


def redundancy_report(app: CM1) -> None:
    """What each strategy identifies as unique in the step-30 checkpoint."""
    indices = app.build_indices(N_RANKS)
    active = app.active_rank_count(N_RANKS)
    print(f"Storm footprint: {active} of {N_RANKS} ranks have weather.")
    rows = []
    for strategy in Strategy:
        config = DumpConfig(replication_factor=K, strategy=strategy,
                            f_threshold=1 << 17)
        metrics = compute_metrics(indices, simulate_dump(indices, config))
        rows.append([
            strategy.value,
            f"{metrics.unique_fraction * 100:.1f}%",
            human_bytes(metrics.sent_total_bytes),
            human_bytes(metrics.recv_max),
        ])
    print(format_table(
        ["strategy", "unique content", "total replication traffic",
         "max receive"],
        rows,
    ))


def program(comm, cluster, app):
    config = DumpConfig(replication_factor=K, chunk_size=4096, f_threshold=1 << 17)
    runtime = CheckpointRuntime(comm, cluster, config, interval=30)

    ix, iy = app.placement(comm.rank, N_RANKS)
    model = CM1RankModel(
        NX, NY, NZ, origin=(ix * NX, iy * NY), vortex=app.vortex(N_RANKS)
    )
    for name, array in model.state_arrays().items():
        runtime.memory.register(name, array)

    for step in range(1, 71):
        model.step()
        runtime.maybe_checkpoint(step)
    final_theta = model.fields["theta"].copy()

    # Kill two nodes, restart from the step-60 checkpoint, redo 10 steps.
    comm.barrier()
    if comm.rank == 0:
        cluster.fail_node(3)
        cluster.fail_node(11)
    comm.barrier()
    runtime.restart()
    model.step(10)
    return (
        bool(np.array_equal(model.fields["theta"], final_theta)),
        model.active,
        runtime.stats.checkpoints_taken,
    )


def main() -> None:
    app = build_app()
    redundancy_report(app)

    print("\nRunning 70 steps with checkpoints at 30 and 60, then a "
          "2-node failure and restart...")
    cluster = Cluster(N_RANKS)
    results = World(N_RANKS).run(program, cluster, app)

    stormy = sum(1 for _m, active, _c in results if active)
    assert all(match for match, _a, _c in results)
    assert all(ckpts == 2 for _m, _a, ckpts in results)
    print(f"Restart reproduced the exact step-70 state on all {N_RANKS} ranks "
          f"({stormy} stormy, {N_RANKS - stormy} calm).")


if __name__ == "__main__":
    main()
