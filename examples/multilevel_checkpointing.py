#!/usr/bin/env python
"""Multi-level checkpointing: surviving more than K-1 failures.

Partner replication (the paper's contribution) protects against up to K-1
simultaneous node failures at local-storage speed; the parallel file
system is orders of magnitude slower but survives anything.  The SCR-style
multi-level runtime combines them: every checkpoint goes to L1
(local+partner, dedup-aware), every third one also flushes to L2 (PFS).

This example runs a CM1-style job, then plays three escalating disasters:

1. one node lost            -> newest checkpoint restored from L1;
2. a rank AND its partner   -> group agrees to roll back to the newest
                               PFS-flushed id; wounded ranks read L2;
3. every node lost          -> full restart from the PFS alone.

Run:  python examples/multilevel_checkpointing.py
"""

import numpy as np

from repro import Cluster, DumpConfig, World
from repro.analysis.tables import format_table, human_bytes
from repro.ftrt import MultiLevelRuntime
from repro.storage import ParallelFileSystem

N_RANKS = 8
K = 2
STEPS = 12
INTERVAL = 2  # L1 checkpoint every 2 steps
PFS_EVERY = 3  # L2 flush every 3rd checkpoint


def scenario(name, fail_nodes):
    cluster = Cluster(N_RANKS)
    pfs = ParallelFileSystem()
    config = DumpConfig(replication_factor=K, chunk_size=1024, f_threshold=1 << 17)

    def program(comm):
        runtime = MultiLevelRuntime(
            comm, cluster, pfs, config, interval=INTERVAL, pfs_every=PFS_EVERY
        )
        state = np.full(2048, float(comm.rank * 10_000))
        runtime.memory.register("state", state)
        for step in range(1, STEPS + 1):
            state += 1.0
            runtime.maybe_checkpoint(step)

        comm.barrier()
        if comm.rank == 0:
            for node in fail_nodes:
                cluster.fail_node(node)
        comm.barrier()

        dump_id, level = runtime.restart()
        step_restored = (dump_id + 1) * INTERVAL
        assert np.all(state == comm.rank * 10_000 + step_restored)
        return dump_id, level, runtime.stats

    results = World(N_RANKS).run(program)
    dump_id = results[0][0]
    levels = [level for _d, level, _s in results]
    return [
        name,
        str(fail_nodes) if fail_nodes else "-",
        dump_id,
        (dump_id + 1) * INTERVAL,
        f"{levels.count('L1')} L1 / {levels.count('L2')} L2",
        human_bytes(pfs.stats.bytes_written),
    ]


def main() -> None:
    print(f"{N_RANKS} ranks, K={K}, {STEPS} steps; L1 every {INTERVAL} steps, "
          f"L2 every {PFS_EVERY} checkpoints (flushed ids 0 and 3).")
    rows = [
        scenario("tolerable (< K failures)", (2,)),
        scenario("partner pair lost", (0, 7)),
        scenario("total cluster loss", tuple(range(N_RANKS))),
    ]
    print(format_table(
        ["disaster", "failed nodes", "restored id", "state @ step",
         "restore levels", "PFS written"],
        rows,
    ))
    print("\nScenario 1 restores the newest checkpoint (id 5, step 12) from "
          "local data; 2 and 3 roll back to the newest PFS-flushed id — the "
          "multi-level trade: rare flushes bound the rollback, cheap L1 "
          "checkpoints bound the common-case cost.")


if __name__ == "__main__":
    main()
