#!/usr/bin/env python
"""Quickstart: one collective dump, three strategies, one restore.

Eight SPMD ranks each hold a dataset that mixes the redundancy classes the
paper exploits (globally shared tables, zero pages, locally repeated
patterns, rank-unique data).  We run ``DUMP_OUTPUT`` with a replication
factor of 3 under each strategy and compare what actually moved and what
actually got stored — then kill two nodes and restore every dataset from
the survivors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, Dataset, DumpConfig, Strategy, World, dump_output, restore_dataset
from repro.analysis.tables import format_table, human_bytes

N_RANKS = 8
K = 3
CHUNK = 4096


def dataset_for(rank: int) -> Dataset:
    """A rank's 'heap': shared tables + zeros + repeated pattern + unique."""
    shared_tables = np.random.RandomState(42).bytes(CHUNK * 32)  # same everywhere
    zero_pages = b"\x00" * (CHUNK * 16)
    repeated = (bytes([rank]) * CHUNK) * 8  # locally duplicated 8x
    unique = np.random.RandomState(1000 + rank).bytes(CHUNK * 24)
    return Dataset([shared_tables, zero_pages, repeated, unique])


def main() -> None:
    rows = []
    clusters = {}
    for strategy in Strategy:
        config = DumpConfig(
            replication_factor=K, chunk_size=CHUNK, strategy=strategy,
            f_threshold=1 << 17,
        )
        cluster = Cluster(N_RANKS, dedup=(strategy is not Strategy.NO_DEDUP))
        clusters[strategy] = cluster

        def program(comm):
            return dump_output(comm, dataset_for(comm.rank), config, cluster)

        reports = World(N_RANKS).run(program)
        rows.append([
            strategy.value,
            human_bytes(sum(r.sent_bytes for r in reports)),
            human_bytes(max(r.received_bytes for r in reports)),
            human_bytes(cluster.total_physical_bytes),
            sum(r.discarded_chunks for r in reports),
        ])

    print(f"Collective dump of {N_RANKS} ranks, K={K}:")
    print(format_table(
        ["strategy", "network traffic", "max receive", "physical storage",
         "chunks discarded"],
        rows,
    ))

    # Resilience check: K=3 survives any 2 node failures.
    cluster = clusters[Strategy.COLL_DEDUP]
    cluster.fail_node(0)
    cluster.fail_node(5)
    print("\nNodes 0 and 5 failed; restoring every rank from survivors...")
    for rank in range(N_RANKS):
        restored, report = restore_dataset(cluster, rank)
        assert restored == dataset_for(rank), f"rank {rank} corrupted!"
    print(f"All {N_RANKS} datasets restored bit-exactly "
          f"(rank {N_RANKS - 1} pulled {report.remote_chunks} chunks from partners).")


if __name__ == "__main__":
    main()
