#!/usr/bin/env python
"""HPCCG under checkpoint-restart: the paper's first evaluation scenario.

Eight ranks run a real 27-point conjugate-gradient solve (Mantevo HPCCG's
structure, scaled down).  The AC-FTE-analog runtime captures every solver
array as a checkpoint at iteration 20 of 30.  We then kill K-1 = 2 nodes,
restart all ranks from the surviving replicas, redo the lost iterations
and verify the trajectory is bit-compatible with the uninterrupted run.

Run:  python examples/checkpoint_restart_hpccg.py
"""

import numpy as np

from repro import Cluster, DumpConfig, World
from repro.analysis.tables import format_table, human_bytes
from repro.apps.hpccg import HPCCGRankSolver
from repro.ftrt import CheckpointRuntime
from repro.storage import FailureInjector

N_RANKS = 8
K = 3
CHECKPOINT_AT = 20
TOTAL_ITERS = 30
SUB_BLOCK = 10  # 10^3 rows per rank (the paper uses 150^3)


def program(comm, cluster):
    config = DumpConfig(replication_factor=K, chunk_size=4096, f_threshold=1 << 17)
    runtime = CheckpointRuntime(comm, cluster, config, interval=CHECKPOINT_AT)

    solver = HPCCGRankSolver(SUB_BLOCK, SUB_BLOCK, SUB_BLOCK)
    for name, array in solver.solver_arrays().items():
        runtime.memory.register(name, array)

    # Phase 1: run to completion, checkpointing on the way.
    for iteration in range(1, TOTAL_ITERS + 1):
        solver.iterate(1)
        runtime.maybe_checkpoint(iteration)
    reference = solver.x.copy()
    residual_done = solver.residual_norm()

    # Phase 2: disaster — kill K-1 nodes (rank 0 plays the fault injector).
    comm.barrier()
    if comm.rank == 0:
        victims = FailureInjector(cluster, seed=2026).fail_random_nodes(K - 1)
        print(f"  !! nodes {victims} failed")
    comm.barrier()

    # Phase 3: restart from the checkpoint (iteration 20) and redo the work.
    runtime.restart()
    solver._rs_old = float(solver.r @ solver.r)  # re-derive CG scalar state
    solver.iterate(TOTAL_ITERS - CHECKPOINT_AT)

    report = runtime.stats.reports[-1]
    return {
        "match": bool(np.allclose(solver.x, reference, rtol=1e-8)),
        "residual": residual_done,
        "checkpoint_bytes": report.dataset_bytes,
        "sent_bytes": report.sent_bytes,
        "stored_bytes": report.stored_bytes + report.received_bytes,
        "discarded": report.discarded_chunks,
    }


def main() -> None:
    cluster = Cluster(N_RANKS)
    print(f"HPCCG {SUB_BLOCK}^3 per rank on {N_RANKS} ranks, K={K}, "
          f"checkpoint at iteration {CHECKPOINT_AT}/{TOTAL_ITERS}")
    results = World(N_RANKS).run(program, cluster)

    print(format_table(
        ["rank", "ckpt size", "replicated", "stored (own+recv)",
         "chunks discarded", "trajectory match"],
        [
            [r, human_bytes(res["checkpoint_bytes"]), human_bytes(res["sent_bytes"]),
             human_bytes(res["stored_bytes"]), res["discarded"],
             "yes" if res["match"] else "NO"]
            for r, res in enumerate(results)
        ],
    ))
    assert all(res["match"] for res in results)
    print(f"\nAll ranks resumed from the checkpoint and reconverged "
          f"(final residual {results[0]['residual']:.2e}).")
    print("Note the discarded chunks: interior ranks found their matrix "
          "already replicated on other ranks — the paper's 'natural replicas'.")


if __name__ == "__main__":
    main()
