#!/usr/bin/env python
"""A miniature of the paper's evaluation, runnable in under a minute.

Regenerates the headline comparisons at a handful of process counts:
Table I-style completion times, the Figure 3(a) unique-content ratios,
and the Figure 4(c)/5(c) shuffle ablation — all on the Shamrock machine
profile.  The full sweeps (every table and figure, with shape assertions)
live in benchmarks/; this script is the guided tour.

Run:  python examples/paper_evaluation.py
"""

from repro.analysis.experiments import cm1_runner, fig2_example, hpccg_runner
from repro.analysis.tables import format_table
from repro.core import Strategy


def table1_mini(runner, ns):
    print(f"\n== {runner.name}: completion time (s) with checkpointing, K=3 ==")
    rows = []
    for n in ns:
        runs = runner.run_strategies(n, k=3)
        rows.append([
            n,
            f"{runs[Strategy.NO_DEDUP].completion_s:.0f}",
            f"{runs[Strategy.LOCAL_DEDUP].completion_s:.0f}",
            f"{runs[Strategy.COLL_DEDUP].completion_s:.0f}",
            f"{runner.timeline.baseline(n):.0f}",
        ])
    print(format_table(
        ["# procs", "no-dedup", "local-dedup", "coll-dedup", "baseline"], rows
    ))


def unique_content(runner, n):
    runs = runner.run_strategies(n, k=3)
    print(f"\n== {runner.name}-{n}: unique content (fraction of raw data) ==")
    print(format_table(
        ["approach", "unique fraction"],
        [[s.value, f"{runs[s].metrics.unique_fraction * 100:.1f}%"] for s in Strategy],
    ))


def shuffle_ablation(runner, n, ks=(2, 4, 6)):
    print(f"\n== {runner.name}-{n}: max receive size, shuffle on/off (GB) ==")
    rows = []
    scale = runner.volume_scale(n)
    for k in ks:
        on = runner.run(n, Strategy.COLL_DEDUP, k=k, shuffle=True).metrics.recv_max
        off = runner.run(n, Strategy.COLL_DEDUP, k=k, shuffle=False).metrics.recv_max
        saving = (1 - on / off) * 100 if off else 0.0
        rows.append([k, f"{on * scale / 1e9:.2f}", f"{off * scale / 1e9:.2f}",
                     f"{saving:.0f}%"])
    print(format_table(["K", "coll-shuffle", "coll-no-shuffle", "reduction"], rows))


def main() -> None:
    print("Figure 2 worked example:", fig2_example())

    hpccg = hpccg_runner()
    cm1 = cm1_runner()
    table1_mini(hpccg, (16, 64, 196))
    table1_mini(cm1, (12, 120, 264))
    unique_content(hpccg, 196)
    unique_content(cm1, 264)
    shuffle_ablation(cm1, 264)
    print("\nFor the full 408-rank sweeps with shape assertions, run:")
    print("  pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()
