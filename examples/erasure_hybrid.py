#!/usr/bin/env python
"""Hybrid redundancy (paper §VI future work): parity instead of copies.

After collective dedup, some chunks are still short of the target K —
the globally unique ones.  Plain coll-dedup tops them up with K-D full
copies; the hybrid policy stripes them with Reed-Solomon parity instead,
giving the same any-(K-1)-failure guarantee at a fraction of the bytes.
This example runs both the accounting and the real encode/decode path:
it destroys chunks and rebuilds them from parity.

Run:  python examples/erasure_hybrid.py
"""

from repro.analysis.tables import format_table, human_bytes
from repro.apps.synthetic import SyntheticWorkload
from repro.core import DumpConfig, Strategy
from repro.core.fingerprint import Fingerprinter
from repro.erasure import HybridPolicy
from repro.sim import simulate_dump

N_RANKS = 16
K = 3
CHUNK = 1024


def main() -> None:
    workload = SyntheticWorkload(
        chunks_per_rank=128, chunk_size=CHUNK,
        frac_global=0.3, frac_zero=0.1, frac_local_dup=0.1,  # half unique
    )
    indices = workload.build_indices(N_RANKS, chunk_size=CHUNK)
    config = DumpConfig(replication_factor=K, chunk_size=CHUNK,
                        f_threshold=1 << 17)
    view = simulate_dump(indices, config).view

    policy = HybridPolicy(stripe_data=8, stripe_parity=K - 1)
    summary = policy.summarize(indices, view, K)

    print(f"{N_RANKS} ranks, K={K}: {summary.short_chunks} chunks lack "
          f"natural replicas ({human_bytes(summary.short_bytes)}).")
    print(format_table(
        ["top-up mechanism", "extra bytes", "relative"],
        [
            [f"replication ({K - 1} copies)",
             human_bytes(summary.replication_topup_bytes), "1.00x"],
            [f"RS({policy.stripe_data + policy.stripe_parity},{policy.stripe_data}) parity",
             human_bytes(summary.parity_bytes),
             f"{summary.parity_bytes / summary.replication_topup_bytes:.2f}x"],
        ],
    ))

    # Functional proof: encode one rank's unique chunks, destroy two, rebuild.
    rank = 5
    fpr = Fingerprinter("sha1")
    dataset = workload.build_dataset(rank, N_RANKS)
    chunks = {}
    for chunk in dataset.chunks(CHUNK):
        fp = fpr(chunk)
        entry = view.get(fp)
        # The chunks replication would top up: no global entry, or this rank
        # is the first designated holder and natural copies fall short of K.
        short = entry is None or (
            rank in entry.ranks
            and len(entry.ranks) < K
            and entry.ranks.index(rank) == 0
        )
        if short and fp not in chunks:
            chunks[fp] = chunk
    sizes = {fp: len(c) for fp, c in chunks.items()}
    stripes = policy.protect_rank(chunks, CHUNK)
    print(f"\nRank {rank}: {len(chunks)} unique chunks packed into "
          f"{len(stripes)} stripes of {policy.stripe_data}+{policy.stripe_parity}.")

    stripe = stripes[0]
    victims = stripe.fingerprints[: K - 1]
    surviving = {fp: c for fp, c in chunks.items() if fp not in victims}
    recovered = policy.recover_chunks(stripe, surviving, sizes)
    assert all(recovered[fp] == chunks[fp] for fp in victims)
    print(f"Destroyed {len(victims)} chunks of stripe 0; parity decode "
          f"rebuilt them bit-exactly.")

    parity_dump_end_to_end()


def parity_dump_end_to_end() -> None:
    """The same idea inside DUMP_OUTPUT itself: redundancy="parity" forms
    cross-rank stripes during the dump, and restore decodes after node
    failures."""
    from repro import Cluster, World, dump_output, restore_dataset
    from repro.apps.synthetic import SyntheticWorkload

    print("\n-- end to end: DumpConfig(redundancy='parity') --")
    workload = SyntheticWorkload(chunks_per_rank=64, chunk_size=CHUNK,
                                 frac_global=0.3, frac_zero=0.1)
    config = DumpConfig(replication_factor=K, chunk_size=CHUNK,
                        f_threshold=1 << 17, redundancy="parity",
                        stripe_data=8)
    cluster = Cluster(N_RANKS)
    reports = World(N_RANKS).run(
        lambda comm: dump_output(
            comm, workload.build_dataset(comm.rank, N_RANKS), config, cluster
        )
    )
    parity = sum(node.parity_bytes for node in cluster.nodes)
    print(f"dump complete: {sum(r.parity_stripes for r in reports)} stripes, "
          f"{human_bytes(parity)} of parity instead of replica top-ups.")

    cluster.fail_node(3)
    cluster.fail_node(9)
    restored, report = restore_dataset(cluster, 3)
    assert restored == workload.build_dataset(3, N_RANKS)
    print(f"nodes 3 and 9 failed; rank 3 restored bit-exactly, "
          f"{report.decoded_chunks} chunks decoded from stripes.")


if __name__ == "__main__":
    main()
